//! The metric registry: named counters, gauges and histograms over
//! lock-free, cacheline-sharded atomic cells.
//!
//! Registration takes a short mutex to update the name map; the handles
//! it returns are clones of `Arc`-shared cells, so recording on the hot
//! path is a relaxed atomic add with no lock anywhere. Counters and
//! histograms are **sharded** ([`crate::shard`]): each recording thread
//! writes its own cacheline-padded cell and the shards are merged only
//! when something reads — `get()`, `snapshot()`, an exporter, the
//! scrape server. A shared `&Registry` (or a cloned handle) therefore
//! works unchanged from parallel workloads, with no cross-core
//! cacheline traffic on the record path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::shard::{shard_index, ShardedU64, SHARDS};

/// A monotonically increasing counter. Sharded: `inc`/`add` touch only
/// the calling thread's cell; `get` merges at read time.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<ShardedU64>,
}

impl Counter {
    /// A standalone counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.add(n);
    }

    /// The current value (merged across shards).
    pub fn get(&self) -> u64 {
        self.cell.sum()
    }

    /// Resets to zero (e.g. after a warm-up phase).
    pub fn reset(&self) {
        self.cell.reset();
    }
}

/// A gauge: an arbitrary value that can go up and down. Stored as the
/// bit pattern of an `f64` so fractions (hit rates, problematic
/// fractions) fit alongside sizes. Gauges are *set*, not accumulated,
/// so they stay a single cell — sharding has nothing to merge.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }
}

impl Gauge {
    /// A standalone gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One shard of a histogram: its own buckets, sum and count, alone on
/// its cachelines so concurrent observers never write a line another
/// observer reads. `count` is incremented **last, with Release** — the
/// snapshot's consistency anchor (see [`Histogram::snapshot`]).
#[repr(align(64))]
#[derive(Debug)]
struct HistShard {
    /// `bounds.len() + 1` cells; the last is the overflow (`+Inf`).
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistShard {
    fn new(buckets: usize) -> Self {
        HistShard {
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram with inclusive upper bounds and an overflow
/// bucket, plus running `sum` and `count`, sharded per recording
/// thread.
///
/// `observe(v)` increments the first bucket whose bound satisfies
/// `v <= bound`, or the overflow bucket when `v` exceeds every bound —
/// Prometheus `le` semantics.
///
/// **Snapshot consistency.** An observation is three stores (bucket,
/// sum, count); a concurrent scrape could once see `count != Σ buckets`
/// and render a histogram whose `_count` line disagreed with its own
/// cumulative buckets. The fix is ordered: `observe` bumps the bucket
/// and sum first and the count **last with Release**; `snapshot` reads
/// each shard's count **first with Acquire** (so every counted
/// observation's bucket increment is visible) and then clamps the
/// bucket counts down to the count, trimming in-flight observations
/// that had reached their bucket but not yet the count. Every snapshot
/// therefore satisfies `Σ counts == count` exactly. (`sum` may still
/// momentarily include an in-flight value — the same benign skew real
/// Prometheus client libraries exhibit.)
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    shards: Arc<Vec<HistShard>>,
}

impl Histogram {
    /// A standalone histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            shards: Arc::new((0..SHARDS).map(|_| HistShard::new(bounds.len() + 1)).collect()),
            bounds: Arc::new(bounds.to_vec()),
        }
    }

    /// Records one observation (into the calling thread's shard only).
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        let shard = &self.shards[shard_index()];
        shard.buckets[i].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        // Last, with Release: once a reader acquires this increment it
        // also sees the bucket and sum increments above.
        shard.count.fetch_add(1, Ordering::Release);
    }

    /// The configured inclusive upper bounds (without the overflow).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count.load(Ordering::Acquire)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.sum.load(Ordering::Relaxed)).sum()
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// A consistent copy of the per-bucket counts (including the final
    /// overflow bucket): `Σ counts == count()` as observed by one
    /// coherent snapshot. Routed through [`Self::snapshot`].
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.snapshot().counts
    }

    /// A point-in-time snapshot with `Σ counts == count` guaranteed;
    /// see the type docs for the ordering argument.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0u64;
        let mut count = 0u64;
        for shard in self.shards.iter() {
            // Count first (Acquire): every observation included in it
            // has already published its bucket increment.
            let c = shard.count.load(Ordering::Acquire);
            let mut shard_counts: Vec<u64> =
                shard.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            // Trim in-flight observations (bucket bumped, count not
            // yet): remove the excess from the highest buckets down so
            // the shard's bucket total equals its count.
            let mut excess = shard_counts.iter().sum::<u64>().saturating_sub(c);
            for b in shard_counts.iter_mut().rev() {
                if excess == 0 {
                    break;
                }
                let trim = excess.min(*b);
                *b -= trim;
                excess -= trim;
            }
            for (m, s) in counts.iter_mut().zip(&shard_counts) {
                *m += s;
            }
            sum += shard.sum.load(Ordering::Relaxed);
            count += c;
        }
        HistogramSnapshot { bounds: self.bounds.as_slice().to_vec(), counts, sum, count }
    }

    /// Resets every cell in every shard to zero.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for b in shard.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
            shard.sum.store(0, Ordering::Relaxed);
            shard.count.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`Histogram`], internally consistent:
/// `Σ counts == count` (see [`Histogram::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (without the overflow bucket).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the bucket holding the target rank — the
    /// same estimator as Prometheus's `histogram_quantile`. Bucket `i`
    /// spans `(bounds[i-1], bounds[i]]` (the first spans `[0,
    /// bounds[0]]`); ranks landing in the overflow bucket report the
    /// highest finite bound, since the overflow has no upper edge to
    /// interpolate toward. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if c > 0 && cum as f64 >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket: no finite upper edge.
                    return self.bounds.last().copied().unwrap_or(0) as f64;
                }
                let upper = self.bounds[i] as f64;
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] as f64 };
                let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
        }
        self.bounds.last().copied().unwrap_or(0) as f64
    }

    /// The median estimate; see [`Self::quantile`].
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate; see [`Self::quantile`].
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate; see [`Self::quantile`].
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// One registered metric (as stored and snapshotted).
#[derive(Debug, Clone)]
pub enum Metric {
    /// See [`Counter`].
    Counter(Counter),
    /// See [`Gauge`].
    Gauge(Gauge),
    /// See [`Histogram`].
    Histogram(Histogram),
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone)]
pub enum Snapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A named collection of metrics.
///
/// Names follow the Prometheus convention `[a-zA-Z_][a-zA-Z0-9_]*`; the
/// workspace uses `clue_<component>_<metric>` (see the crate docs).
/// Registration is idempotent: asking for an existing name returns a
/// handle to the same cells, so independently constructed components
/// can share metrics through a common registry.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok_first = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    let ok_rest = name.chars().skip(1).all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(ok_first && ok_rest, "invalid metric name {name:?}");
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered as a
    /// different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: Metric::Counter(Counter::new()),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("{name} already registered as {}", kind(other)),
        }
    }

    /// Returns the gauge `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is invalid or registered as another kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: Metric::Gauge(Gauge::new()),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("{name} already registered as {}", kind(other)),
        }
    }

    /// Returns the histogram `name`, creating it with `bounds` if
    /// absent (existing histograms keep their original bounds).
    ///
    /// # Panics
    /// Panics if `name` is invalid, registered as another kind, or
    /// `bounds` is invalid.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: Metric::Histogram(Histogram::new(bounds)),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("{name} already registered as {}", kind(other)),
        }
    }

    /// Registers an existing metric handle under `name`, sharing its
    /// cells — how components mirror their private telemetry into a
    /// shared registry.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered.
    pub fn register(&self, name: &str, help: &str, metric: Metric) {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let prior = entries.insert(
            name.to_owned(),
            Entry { help: help.to_owned(), metric },
        );
        assert!(prior.is_none(), "{name} registered twice");
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.lock().expect("registry poisoned").contains_key(name)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry poisoned").len()
    }

    /// `true` iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sorted point-in-time snapshot of every metric:
    /// `(name, help, value)`.
    pub fn snapshot(&self) -> Vec<(String, String, Snapshot)> {
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .map(|(name, e)| {
                let snap = match &e.metric {
                    Metric::Counter(c) => Snapshot::Counter(c.get()),
                    Metric::Gauge(g) => Snapshot::Gauge(g.get()),
                    Metric::Histogram(h) => Snapshot::Histogram(h.snapshot()),
                };
                (name.clone(), e.help.clone(), snap)
            })
            .collect()
    }

    /// Renders the registry in Prometheus text-exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Renders the registry as a JSON object.
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }
}

fn kind(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("clue_test_total", "test");
        let b = reg.counter("clue_test_total", "test");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauges_hold_fractions() {
        let reg = Registry::new();
        let g = reg.gauge("clue_test_ratio", "test");
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
        assert_eq!(reg.gauge("clue_test_ratio", "").get(), 0.375);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("clue_test_x", "");
        reg.gauge("clue_test_x", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        Registry::new().counter("3bad name", "");
    }

    #[test]
    fn histogram_buckets_follow_le_semantics() {
        let h = Histogram::new(&[1, 4, 16]);
        // On-edge values land in their own bucket (le semantics).
        h.observe(1);
        h.observe(4);
        h.observe(16);
        // Interior values.
        h.observe(2);
        // Overflow.
        h.observe(17);
        h.observe(1_000_000);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 4 + 16 + 2 + 17 + 1_000_000);
    }

    #[test]
    fn histogram_zero_lands_in_first_bucket() {
        let h = Histogram::new(&[0, 2]);
        h.observe(0);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
    }

    #[test]
    fn histogram_mean_and_reset() {
        let h = Histogram::new(&[10]);
        h.observe(4);
        h.observe(8);
        assert_eq!(h.mean(), 6.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[4, 2]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("clue_b_total", "b");
        reg.gauge("clue_a_value", "a");
        reg.histogram("clue_c_hist", "c", &[1]);
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["clue_a_value", "clue_b_total", "clue_c_hist"]);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        let c = reg.counter("clue_threads_total", "");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn sharded_histogram_merges_across_threads() {
        let h = Histogram::new(&[1, 2, 4]);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe((t + i) % 6);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.counts.iter().sum::<u64>(), 4000);
    }

    /// The satellite regression: a scrape racing live `observe` calls
    /// must never see `count != Σ buckets`. Writers hammer one shared
    /// histogram while a reader snapshots continuously; every snapshot
    /// must be internally consistent, and the final state exact.
    #[test]
    fn snapshots_are_internally_consistent_under_concurrent_observes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let h = Histogram::new(&[1, 2, 4, 8]);
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..50_000u64 {
                        h.observe((t * 3 + i) % 10);
                    }
                })
            })
            .collect();
        let reader = {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut snaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = h.snapshot();
                    assert_eq!(
                        s.counts.iter().sum::<u64>(),
                        s.count,
                        "scrape skew: buckets disagree with count in {s:?}"
                    );
                    snaps += 1;
                }
                snaps
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let snaps = reader.join().unwrap();
        assert!(snaps > 0, "the reader must have raced at least one snapshot");
        let s = h.snapshot();
        assert_eq!(s.count, 200_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 200_000);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10, 20, 40]);
        // 10 observations uniformly in (0, 10]: p50 interpolates to 5.
        for _ in 0..10 {
            h.observe(5);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 5.0);
        assert_eq!(s.quantile(1.0), 10.0);

        // Split 5 / 5 across the first two buckets: the median sits at
        // the first bucket's upper edge.
        let h = Histogram::new(&[10, 20]);
        for _ in 0..5 {
            h.observe(1);
        }
        for _ in 0..5 {
            h.observe(15);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 10.0);
        assert_eq!(s.p99(), 19.8, "0.99 * 10 = rank 9.9 → 80% into (10, 20]");
    }

    #[test]
    fn quantiles_handle_overflow_and_empty() {
        let h = Histogram::new(&[1, 2]);
        assert_eq!(h.snapshot().quantile(0.5), 0.0, "empty histogram");
        for _ in 0..10 {
            h.observe(100); // everything in the overflow bucket
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 2.0, "overflow reports the highest finite bound");
        assert_eq!(s.p99(), 2.0);
    }
}
