//! Metric bundle for the entropy-compressed compiled path.
//!
//! Like [`crate::StrideTelemetry`], the per-packet walk inherits the
//! ordinary [`crate::LookupTelemetry`] stream; this bundle counts the
//! compressed batch loop (batches, interleave groups, prefetches) and
//! additionally exposes the layout gauges the CRAM analysis reports —
//! arena bytes, bucket bytes, dictionary bytes and bytes/prefix — so a
//! scrape shows at a glance whether a table fits its cache budget.

use crate::registry::{Counter, Gauge, Registry};

/// Telemetry for the compressed engine's batch loop and compiled
/// layout.
///
/// Counters are recorded once per batch; the layout gauges are set
/// once at compile/attach time and are pure descriptions of the
/// immutable arena.
#[derive(Clone, Debug, Default)]
pub struct CompressedTelemetry {
    /// Batch calls served by the compressed path.
    pub batches_total: Counter,
    /// Packets resolved by the compressed path.
    pub packets_total: Counter,
    /// Interleave groups processed (one prefetch pass each).
    pub groups_total: Counter,
    /// Software prefetches issued (0 when interleaving is disabled or
    /// the target has no prefetch intrinsic wired up).
    pub prefetches_total: Counter,
    /// Bytes of the compressed walk arena (bitmap quads + rank
    /// directories).
    pub arena_bytes: Gauge,
    /// Bytes of the clue buckets (descriptors, slots, FD tags).
    pub bucket_bytes: Gauge,
    /// Bytes of the tag → prefix dictionary (control plane only; the
    /// hot walk never touches it).
    pub dict_bytes: Gauge,
    /// Trie vertices encoded in the arena.
    pub nodes: Gauge,
    /// Walk-arena bytes per receiver prefix — the headline compression
    /// figure (the frozen arena runs ~60 B/prefix at 1M routes).
    pub bytes_per_prefix: Gauge,
}

impl CompressedTelemetry {
    /// A detached bundle: live cells, no registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// A bundle registered into `registry` under `prefix` (e.g.
    /// `clue_compressed`), creating or sharing:
    ///
    /// * `{prefix}_batches_total`
    /// * `{prefix}_packets_total`
    /// * `{prefix}_groups_total`
    /// * `{prefix}_prefetches_total`
    /// * `{prefix}_arena_bytes`
    /// * `{prefix}_bucket_bytes`
    /// * `{prefix}_dict_bytes`
    /// * `{prefix}_nodes`
    /// * `{prefix}_bytes_per_prefix`
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        CompressedTelemetry {
            batches_total: registry.counter(
                &format!("{prefix}_batches_total"),
                "Batch calls served by the compressed path",
            ),
            packets_total: registry.counter(
                &format!("{prefix}_packets_total"),
                "Packets resolved by the compressed path",
            ),
            groups_total: registry.counter(
                &format!("{prefix}_groups_total"),
                "Interleave groups processed by the compressed batch loop",
            ),
            prefetches_total: registry.counter(
                &format!("{prefix}_prefetches_total"),
                "Software prefetches issued by the compressed batch loop",
            ),
            arena_bytes: registry.gauge(
                &format!("{prefix}_arena_bytes"),
                "Bytes of the compressed walk arena (quads + rank directories)",
            ),
            bucket_bytes: registry.gauge(
                &format!("{prefix}_bucket_bytes"),
                "Bytes of the compressed engine's clue buckets",
            ),
            dict_bytes: registry.gauge(
                &format!("{prefix}_dict_bytes"),
                "Bytes of the tag-to-prefix dictionary (control plane)",
            ),
            nodes: registry
                .gauge(&format!("{prefix}_nodes"), "Trie vertices encoded in the compressed arena"),
            bytes_per_prefix: registry.gauge(
                &format!("{prefix}_bytes_per_prefix"),
                "Compressed walk-arena bytes per receiver prefix",
            ),
        }
    }

    /// Records one batch: `packets` resolved across `groups` interleave
    /// groups with `prefetches` prefetch hints issued.
    #[inline]
    pub fn record_batch(&self, packets: u64, groups: u64, prefetches: u64) {
        self.batches_total.inc();
        self.packets_total.add(packets);
        self.groups_total.add(groups);
        self.prefetches_total.add(prefetches);
    }

    /// Describes the compiled layout (set once; the arena is
    /// immutable).
    pub fn record_layout(
        &self,
        arena_bytes: u64,
        bucket_bytes: u64,
        dict_bytes: u64,
        nodes: u64,
        bytes_per_prefix: f64,
    ) {
        self.arena_bytes.set(arena_bytes as f64);
        self.bucket_bytes.set(bucket_bytes as f64);
        self.dict_bytes.set(dict_bytes as f64);
        self.nodes.set(nodes as f64);
        self.bytes_per_prefix.set(bytes_per_prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_counts() {
        let t = CompressedTelemetry::detached();
        t.record_batch(64, 8, 64);
        t.record_batch(10, 2, 0);
        assert_eq!(t.batches_total.get(), 2);
        assert_eq!(t.packets_total.get(), 74);
        assert_eq!(t.groups_total.get(), 10);
        assert_eq!(t.prefetches_total.get(), 64);
        t.record_layout(4096, 512, 256, 1000, 4.1);
        assert_eq!(t.arena_bytes.get(), 4096.0);
        assert_eq!(t.bytes_per_prefix.get(), 4.1);
    }

    #[test]
    fn registered_uses_the_naming_convention() {
        let registry = Registry::new();
        let t = CompressedTelemetry::registered(&registry, "clue_compressed");
        t.record_batch(5, 1, 5);
        t.record_layout(1, 2, 3, 4, 5.0);
        for name in [
            "clue_compressed_batches_total",
            "clue_compressed_packets_total",
            "clue_compressed_groups_total",
            "clue_compressed_prefetches_total",
            "clue_compressed_arena_bytes",
            "clue_compressed_bucket_bytes",
            "clue_compressed_dict_bytes",
            "clue_compressed_nodes",
            "clue_compressed_bytes_per_prefix",
        ] {
            assert!(registry.contains(name), "{name} registered");
        }
        assert_eq!(t.packets_total.get(), 5);
        assert_eq!(t.dict_bytes.get(), 3.0);
    }
}
