//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros — over a simple measurement core: a short
//! warmup, then `sample_size` timed batches, each sized to run for
//! roughly 50 ms. Reported numbers are the mean, minimum and maximum
//! ns/iteration across batches (no bootstrap statistics).
//!
//! Set `BENCH_TELEMETRY_OUT=<path>` to additionally dump every result
//! of the binary as a JSON object (used by the `bench-snapshot` tool in
//! `clue-bench` to build `BENCH_telemetry.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, for derived rates in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (lookups, packets, …) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/parameter` path.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sampled batch, ns/iteration.
    pub min_ns: f64,
    /// Slowest sampled batch, ns/iteration.
    pub max_ns: f64,
    /// Iterations per sampled batch.
    pub iters_per_sample: u64,
    /// Number of sampled batches.
    pub samples: u64,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<u64>,
}

/// Passed to the closure given to `bench_function`; drives iteration.
pub struct Bencher<'a> {
    measured: &'a mut Option<(f64, f64, f64, u64, u64)>,
    sample_size: u64,
}

impl Bencher<'_> {
    /// Times `f`, storing the measurement in the parent group.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count lasting ~50 ms.
        let budget = Duration::from_millis(50);
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        let batch = ((budget.as_nanos() as f64 / per_iter.max(0.1)).ceil() as u64).clamp(1, 1 << 30);

        let samples = self.sample_size.clamp(2, 30);
        let (mut sum, mut min, mut max) = (0.0f64, f64::INFINITY, 0.0f64);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            sum += ns;
            min = min.min(ns);
            max = max.max(ns);
        }
        *self.measured = Some((sum / samples as f64, min, max, batch, samples));
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<u64>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let mut measured = None;
        f(&mut Bencher { measured: &mut measured, sample_size: self.sample_size });
        let Some((mean, min, max, batch, samples)) = measured else {
            eprintln!("warning: bench {full} never called Bencher::iter");
            return self;
        };
        let result = BenchResult {
            id: full,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters_per_sample: batch,
            samples,
            throughput: self.throughput,
        };
        report(&result);
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (kept for API compatibility; all reporting is
    /// incremental).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group(id.id.clone()).bench_function(BenchmarkId::from_parameter(""), f);
        self
    }

    /// Everything measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes a JSON dump of all results to `path`. The format is a
    /// single object: id → {mean_ns, min_ns, max_ns, elements_per_sec}.
    pub fn dump_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, results_to_json(&self.results))
    }

    /// Honors `BENCH_TELEMETRY_OUT` if set.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("BENCH_TELEMETRY_OUT") {
            if !path.is_empty() {
                if let Err(e) = self.dump_json(&path) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
        }
    }
}

/// Renders results as a stable, hand-rolled JSON object.
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "  \"{}\": {{\"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}",
            r.id.replace('"', "'"),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample
        );
        if let Some(n) = r.throughput {
            let rate = n as f64 / (r.mean_ns * 1e-9);
            let _ = write!(out, ", \"elements_per_sec\": {rate:.0}");
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push('}');
    out.push('\n');
    out
}

fn report(r: &BenchResult) {
    let human = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    let mut line = format!(
        "{:<50} time: [{} .. {} .. {}]",
        r.id,
        human(r.min_ns),
        human(r.mean_ns),
        human(r.max_ns)
    );
    if let Some(n) = r.throughput {
        let rate = n as f64 / (r.mean_ns * 1e-9);
        let _ = write!(line, "  thrpt: {rate:.0} elem/s");
    }
    println!("{line}");
}

/// Bundles benchmark functions under one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main`, running every group with one shared [`Criterion`]
/// and honoring `BENCH_TELEMETRY_OUT`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(100)).sample_size(2);
            g.bench_function(BenchmarkId::new("f", "p"), |b| {
                b.iter(|| black_box(3u64).wrapping_mul(7))
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "g/f/p");
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
    }

    #[test]
    fn json_dump_is_well_formed() {
        let results = vec![BenchResult {
            id: "g/f".into(),
            mean_ns: 10.5,
            min_ns: 9.0,
            max_ns: 12.0,
            iters_per_sample: 100,
            samples: 3,
            throughput: Some(1000),
        }];
        let json = results_to_json(&results);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"g/f\""));
        assert!(json.contains("\"mean_ns\": 10.5"));
        assert!(json.contains("elements_per_sec"));
    }

    #[test]
    fn benchmark_ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("fam", "method").id, "fam/method");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
