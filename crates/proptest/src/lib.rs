//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`boxed`, `any::<T>()`, range and tuple strategies,
//! [`collection`] and [`option`] combinators, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_oneof!`] macro family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case number and seed
//!   (every run is deterministic, so a failure reproduces exactly);
//! * **uniform `prop_oneof!`** — no weighted variants (unused here);
//! * **set strategies** draw up to the requested size but settle for
//!   fewer when the element domain is too small, where real proptest
//!   would reject and retry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashSet};
use std::rc::Rc;

// The macros need a generator; re-export so expansions can use
// `$crate::__rt` paths without requiring `rand` in the caller.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::{RngExt, SeedableRng};

    /// Stable seed derivation: FNV-1a over the test name, mixed with
    /// the case index, so each test has its own reproducible stream.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1))
    }
}

use __rt::StdRng;
use rand::{Random, RngExt};

/// How a single generated case ended.
pub mod test_runner {
    /// Failure or rejection of one test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the message explains it.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// A failure carrying `reason` (accepts anything displayable,
        /// like the real crate's `Into<Reason>`).
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        /// A rejection: the generated inputs don't apply.
        pub fn reject(_reason: impl std::fmt::Display) -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration (`ProptestConfig` in the real crate).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// `any::<T>()` — the full uniform domain of `T`.
pub fn any<T: Random>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Random> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

/// Pattern-string strategies: in real proptest a `&str` is a regex and
/// the strategy generates matching strings. This shim supports the
/// subset the workspace (and typical tests) use — sequences of atoms
/// with optional repetition:
///
/// * literal characters, `.` (any printable non-newline)
/// * escapes: `\d` `\w` `\s`, `\PC` (any printable, ASCII or not),
///   and `\\`-escaped literals
/// * classes `[a-z0-9_]` (ranges and literals; no negation)
/// * repetitions `{m}`, `{m,n}`, `*`, `+`, `?` (unbounded ones are
///   capped at 8)
///
/// Unsupported syntax panics, so a misuse fails loudly rather than
/// silently generating the wrong language.
mod pattern {
    use super::StdRng;
    use rand::RngExt;

    #[derive(Debug, Clone)]
    enum Atom {
        Lit(char),
        Digit,
        Word,
        Space,
        Printable,
        AnyDot,
        Class(Vec<(char, char)>),
    }

    const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '本', '😀', '\u{00a0}', '§'];

    fn sample(atom: &Atom, rng: &mut StdRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Digit => rng.random_range(b'0'..=b'9') as char,
            Atom::Word => {
                let pool = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                pool[rng.random_range(0..pool.len())] as char
            }
            Atom::Space => *[' ', '\t'].get(rng.random_range(0..2usize)).unwrap(),
            Atom::Printable => {
                // Mostly ASCII printable, occasionally multi-byte, to
                // exercise UTF-8 handling in parsers.
                if rng.random_bool(0.9) {
                    rng.random_range(0x20u8..0x7f) as char
                } else {
                    EXOTIC[rng.random_range(0..EXOTIC.len())]
                }
            }
            Atom::AnyDot => rng.random_range(0x20u8..0x7f) as char,
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.random_range(0..ranges.len())];
                char::from_u32(rng.random_range(lo as u32..=hi as u32))
                    .expect("class range stays in valid chars")
            }
        }
    }

    fn parse_escape(chars: &[char], i: &mut usize) -> Atom {
        *i += 1; // consume the backslash
        let c = *chars.get(*i).expect("dangling escape in pattern");
        *i += 1;
        match c {
            'd' => Atom::Digit,
            'w' => Atom::Word,
            's' => Atom::Space,
            'P' | 'p' => {
                // Only the printable/control property is supported, in
                // both `\PC` and `\p{C}`-ish spellings.
                if chars.get(*i) == Some(&'{') {
                    while *i < chars.len() && chars[*i] != '}' {
                        *i += 1;
                    }
                    *i += 1;
                } else {
                    *i += 1; // the property letter, e.g. the C in \PC
                }
                Atom::Printable
            }
            'n' => Atom::Lit('\n'),
            't' => Atom::Lit('\t'),
            other => Atom::Lit(other),
        }
    }

    fn parse_class(chars: &[char], i: &mut usize) -> Atom {
        *i += 1; // consume '['
        let mut ranges = Vec::new();
        while *i < chars.len() && chars[*i] != ']' {
            let lo = chars[*i];
            assert!(lo != '^', "negated classes are not supported by the proptest shim");
            if chars.get(*i + 1) == Some(&'-') && chars.get(*i + 2).is_some_and(|&c| c != ']') {
                let hi = chars[*i + 2];
                assert!(lo <= hi, "descending class range in pattern");
                ranges.push((lo, hi));
                *i += 3;
            } else {
                ranges.push((lo, lo));
                *i += 1;
            }
        }
        assert!(chars.get(*i) == Some(&']'), "unterminated class in pattern");
        *i += 1;
        assert!(!ranges.is_empty(), "empty class in pattern");
        Atom::Class(ranges)
    }

    fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                *i += 1;
                let mut lo = 0usize;
                while chars[*i].is_ascii_digit() {
                    lo = lo * 10 + chars[*i].to_digit(10).unwrap() as usize;
                    *i += 1;
                }
                let hi = if chars[*i] == ',' {
                    *i += 1;
                    let mut hi = 0usize;
                    while chars[*i].is_ascii_digit() {
                        hi = hi * 10 + chars[*i].to_digit(10).unwrap() as usize;
                        *i += 1;
                    }
                    hi
                } else {
                    lo
                };
                assert!(chars[*i] == '}', "unterminated repetition in pattern");
                *i += 1;
                (lo, hi)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => parse_escape(&chars, &mut i),
                '[' => parse_class(&chars, &mut i),
                '.' => {
                    i += 1;
                    Atom::AnyDot
                }
                '(' | ')' | '|' | '^' | '$' => {
                    panic!("pattern syntax {:?} is not supported by the proptest shim", chars[i])
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (lo, hi) = parse_repeat(&chars, &mut i);
            let n = rng.random_range(lo..=hi);
            for _ in 0..n {
                out.push(sample(&atom, rng));
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        pattern::generate(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A count or count range for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_incl: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_incl: *r.end() }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi_incl)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `HashSet` aiming for `size` elements (settles for fewer if the
    /// element domain is exhausted).
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size: size.into() }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: core::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 50 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A `BTreeSet` aiming for `size` elements (settles for fewer if
    /// the element domain is exhausted).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 50 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::*;

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left), stringify!($right), l),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The test-definition macro. Accepts the same shape as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each case draws its inputs from a seed derived from the test name
/// and case index, so failures reproduce exactly; the reported message
/// includes both.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::__rt::SeedableRng as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let seed = $crate::__rt::case_seed(stringify!($name), case);
                let mut __proptest_rng = $crate::__rt::StdRng::seed_from_u64(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed at case {} (seed {:#x}):\n{}",
                        stringify!($name), case, seed, msg
                    ),
                }
            }
            assert!(
                rejected < config.cases,
                "proptest {}: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        use crate::__rt::{SeedableRng, StdRng};
        let strat = (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| (bits, len));
        let a = strat.generate(&mut StdRng::seed_from_u64(9));
        let b = strat.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn collection_sizes_respect_bounds() {
        use crate::__rt::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(any::<u8>(), 8usize).generate(&mut rng);
            assert_eq!(exact.len(), 8);
            let s = crate::collection::hash_set(0u32..1000, 3..6).generate(&mut rng);
            assert!((3..6).contains(&s.len()));
        }
    }

    #[test]
    fn small_domains_do_not_hang_set_strategies() {
        use crate::__rt::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(4);
        // Only 2 possible values but 10 requested: settles for 2.
        let s = crate::collection::btree_set(0u32..2, 10usize).generate(&mut rng);
        assert_eq!(s.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            x in 1u32..50,
            ys in crate::collection::vec(any::<u16>(), 1..10),
            flag in crate::option::of(any::<u8>()),
        ) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(!ys.is_empty() && ys.len() < 10);
            prop_assert_eq!(flag.is_some() || flag.is_none(), true);
        }

        #[test]
        fn oneof_and_just_cover_alternatives(
            v in prop_oneof![Just(1u8), Just(2), (3u8..5).prop_map(|x| x)],
        ) {
            prop_assert!((1..5).contains(&v), "out of range: {}", v);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn pattern_strings_match_their_language(
            free in "\\PC{0,20}",
            word in "[a-z]{3}-\\d{2,4}x?",
        ) {
            prop_assert!(free.chars().count() <= 20);
            prop_assert!(free.chars().all(|c| !c.is_control()));
            let (head, tail) = word.split_at(4);
            prop_assert!(head.ends_with('-'));
            prop_assert!(head[..3].chars().all(|c| c.is_ascii_lowercase()));
            let digits = tail.trim_end_matches('x');
            prop_assert!((2..=4).contains(&digits.len()));
            prop_assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
