//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench regenerates one of the paper's evaluation artifacts in
//! wall-clock terms, complementing the memory-access counts printed by
//! the `clue-experiments` binaries (DESIGN.md maps tables/figures to
//! both).

use clue_tablegen::{derive_neighbor, generate, NeighborConfig, TrafficConfig};
use clue_trie::{BinaryTrie, Ip4, Prefix};

/// A benchmark-sized sender/receiver pair with a prepared packet stream:
/// destinations and the clues the sender would stamp.
pub struct BenchPair {
    /// Sender's prefixes.
    pub sender: Vec<Prefix<Ip4>>,
    /// Receiver's prefixes.
    pub receiver: Vec<Prefix<Ip4>>,
    /// Packet destinations.
    pub dests: Vec<Ip4>,
    /// Clue stamped by the sender for each destination.
    pub clues: Vec<Option<Prefix<Ip4>>>,
}

/// Builds a same-ISP pair of `n` prefixes with `packets` destinations.
pub fn isp_pair(n: usize, packets: usize, seed: u64) -> BenchPair {
    let sender = clue_tablegen::synthesize_ipv4(n, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed + 1));
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: packets, ..TrafficConfig::paper(seed + 2) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();
    BenchPair { sender, receiver, dests, clues }
}
