//! Tables 4–9 in wall-clock form: per-packet lookup latency for every
//! (family × method) combination on a same-ISP router pair.
//!
//! The experiment binaries report the paper's metric (memory accesses);
//! this bench shows the same ordering holds for real time on a modern
//! CPU — Advance ≈ one hash probe, common Regular ≈ a 24-step pointer
//! chase.

use clue_bench::isp_pair;
use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_trie::Cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let pair = isp_pair(10_000, 2_000, 42);
    let mut group = c.benchmark_group("tables4to9_lookup");
    group.throughput(Throughput::Elements(pair.dests.len() as u64));

    for family in Family::all() {
        for method in Method::all() {
            let mut engine = ClueEngine::precomputed(
                &pair.sender,
                &pair.receiver,
                EngineConfig::new(family, method),
            );
            group.bench_function(
                BenchmarkId::new(family.label(), method.label()),
                |b| {
                    b.iter(|| {
                        let mut total = 0u64;
                        for (&dest, &clue) in pair.dests.iter().zip(&pair.clues) {
                            let mut cost = Cost::new();
                            let bmp = engine.lookup(black_box(dest), clue, None, &mut cost);
                            total += bmp.map_or(0, |p| p.len() as u64);
                        }
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
