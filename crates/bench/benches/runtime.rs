//! The shared-nothing serving runtime: the channel-fed multi-core
//! network walk against the sequential per-packet reference, and the
//! engine-level replica serving loop, at 1/2/4 worker cores.

use clue_core::{EngineConfig, EpochCell, Method, StrideConfig};
use clue_lookup::Family;
use clue_netsim::{
    run_workload_per_packet, serve_lookups, Network, NetworkConfig, RuntimeConfig, StrideNetwork,
    Topology,
};
use clue_trie::{BinaryTrie, Ip4, Prefix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const PACKETS: usize = 4_000;

fn bench_network_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_network");
    let (topo, edges) = Topology::backbone(4, 2);
    let mut cfg =
        NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
    cfg.seed = 1999;
    let mut net: Network<Ip4> = Network::build(topo, cfg);
    group.throughput(Throughput::Elements(PACKETS as u64));

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_workload_per_packet(&mut net, &edges, PACKETS, 1)))
    });

    let stride = StrideNetwork::freeze(&net, StrideConfig::default()).expect("compiles");
    for workers in [1usize, 2, 4] {
        let rc = RuntimeConfig {
            workers,
            batch: (PACKETS / workers / 4).max(1),
            ..RuntimeConfig::default()
        };
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let (stats, report) = stride.run_workload_timed(&edges, PACKETS, 1, &rc, None);
                black_box((stats.total_accesses, report.elapsed_ns))
            })
        });
    }
    group.finish();
}

fn bench_engine_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_serving");
    let sender = clue_tablegen::synthesize_ipv4(8_000, 1999);
    let receiver = clue_tablegen::derive_neighbor(
        &sender,
        &clue_tablegen::NeighborConfig::same_isp(2000),
    );
    let engine = clue_core::ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let stride = engine.freeze_stride(StrideConfig::default()).expect("compiles");
    let dests = clue_tablegen::generate(
        &sender,
        &receiver,
        &clue_tablegen::TrafficConfig { count: PACKETS, ..clue_tablegen::TrafficConfig::paper(7) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();
    group.throughput(Throughput::Elements(PACKETS as u64));

    for workers in [1usize, 2, 4] {
        let cell = EpochCell::new(stride.replicate());
        let rc = RuntimeConfig { workers, batch: 512, ..RuntimeConfig::default() };
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let mut out = Vec::new();
                let r = serve_lookups(&cell, &dests, &clues, &mut out, &rc, None);
                black_box((out.len(), r.packets))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network_runtime, bench_engine_serving);
criterion_main!(benches);
