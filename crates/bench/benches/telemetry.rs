//! Telemetry overhead: the same Advance lookup loop with the registry
//! disabled (plain engine), attached (counters + histograms + mirrored
//! stats), and attached with a ring-buffer subscriber.
//!
//! The acceptance bar is <5% regression for the disabled case over the
//! seed's plain loop — disabled telemetry is one predictable branch per
//! lookup. Run with `BENCH_TELEMETRY_OUT=BENCH_telemetry.json` to dump
//! the measurements as JSON.

use std::hint::black_box;
use std::sync::Arc;

use clue_bench::isp_pair;
use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_telemetry::{Registry, RingBufferSubscriber};
use clue_trie::Cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_telemetry(c: &mut Criterion) {
    let pair = isp_pair(10_000, 2_000, 42);
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(pair.dests.len() as u64));

    type Setup<'a> = Box<dyn Fn(&mut ClueEngine<clue_trie::Ip4>) + 'a>;
    let registry = Registry::new();
    let configs: [(&str, Setup); 3] = [
        ("disabled", Box::new(|_| {})),
        ("registry", Box::new(|e| e.instrument(&registry))),
        (
            "registry+subscriber",
            Box::new(|e| {
                e.instrument(&registry);
                let t = e.telemetry().expect("just instrumented").clone();
                e.attach_telemetry(t.with_subscriber(Arc::new(RingBufferSubscriber::new(1024))));
            }),
        ),
    ];

    for (label, setup) in &configs {
        let mut engine = ClueEngine::precomputed(
            &pair.sender,
            &pair.receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        setup(&mut engine);
        group.bench_function(BenchmarkId::new("advance_lookup", *label), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for (&dest, &clue) in pair.dests.iter().zip(&pair.clues) {
                    let mut cost = Cost::new();
                    let bmp = engine.lookup(black_box(dest), clue, None, &mut cost);
                    total += bmp.map_or(0, |p| p.len() as u64);
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
