//! Section 3.3 in wall-clock form: what it costs to *build* the clue
//! machinery — precomputed clue tables (the routing-algorithm-time path)
//! vs learning a clue on the fly (`procedure new-clue`), across table
//! sizes.

use clue_bench::isp_pair;
use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_trie::Cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("clue_table_construction");
    group.sample_size(10);

    for n in [1_000usize, 5_000, 20_000] {
        let pair = isp_pair(n, 10, 90);
        group.bench_function(BenchmarkId::new("precompute_advance", n), |b| {
            b.iter(|| {
                black_box(ClueEngine::precomputed(
                    &pair.sender,
                    &pair.receiver,
                    EngineConfig::new(Family::Patricia, Method::Advance),
                ))
            })
        });
        group.bench_function(BenchmarkId::new("precompute_simple", n), |b| {
            b.iter(|| {
                black_box(ClueEngine::precomputed(
                    &pair.sender,
                    &pair.receiver,
                    EngineConfig::new(Family::Patricia, Method::Simple),
                ))
            })
        });
    }
    group.finish();

    // Learning: per-clue cost of `procedure new-clue`.
    let pair = isp_pair(10_000, 2_000, 91);
    let mut group = c.benchmark_group("learning");
    group.bench_function("learn_2000_clues", |b| {
        b.iter(|| {
            let mut engine = ClueEngine::learning(
                &pair.receiver,
                EngineConfig::new(Family::Patricia, Method::Advance),
            );
            for (&dest, &clue) in pair.dests.iter().zip(&pair.clues) {
                let mut cost = Cost::new();
                engine.lookup(dest, clue, None, &mut cost);
            }
            black_box(engine.table().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
