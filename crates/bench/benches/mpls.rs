//! Figure 8 in wall-clock form: a 4-router label-switched path with an
//! aggregation point, plain MPLS vs the label-as-clue-index hybrid.

use clue_core::mpls::MplsMode;
use clue_netsim::LabelSwitchedPath;
use clue_tablegen::{derive_neighbor, synthesize_ipv4, NeighborConfig};
use clue_trie::{Address, Ip4, Prefix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_mpls(c: &mut Criterion) {
    let base = synthesize_ipv4(4_000, 77);
    let fecs: Vec<Prefix<Ip4>> = {
        let mut v: Vec<Prefix<Ip4>> = base.iter().map(|p| p.truncate(p.len().min(16))).collect();
        v.sort();
        v.dedup();
        v
    };
    let full = derive_neighbor(&base, &NeighborConfig::same_isp(78));
    let path = LabelSwitchedPath::new(fecs.clone(), vec![fecs.clone(), fecs.clone(), full]);

    let mut rng = StdRng::seed_from_u64(79);
    let dests: Vec<Ip4> = (0..2_000)
        .map(|_| {
            let p = fecs.choose(&mut rng).expect("non-empty");
            let span = (32 - p.len()) as u32;
            let host = if span == 0 { 0 } else { rng.random::<u32>() & ((1u32 << span) - 1) };
            Ip4(p.bits().to_u128() as u32 | host)
        })
        .collect();

    let mut group = c.benchmark_group("fig8_lsp");
    group.throughput(Throughput::Elements(dests.len() as u64));
    for mode in [MplsMode::Plain, MplsMode::WithClues] {
        group.bench_function(BenchmarkId::from_parameter(mode), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &d in &dests {
                    if let Some(acc) = path.total_accesses(black_box(d), mode) {
                        total += acc;
                    }
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpls);
criterion_main!(benches);
