//! Ablation bench: lookup latency of the Advance method as the
//! neighbor-table similarity degrades — the wall-clock twin of the
//! `similarity_sweep` experiment binary.

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_tablegen::{derive_neighbor, generate, synthesize_ipv4, NeighborConfig, TrafficConfig};
use clue_trie::{BinaryTrie, Cost, Ip4};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let base = synthesize_ipv4(6_000, 601);
    let mut group = c.benchmark_group("similarity_advance");

    for share in [50u32, 85, 99] {
        let receiver =
            derive_neighbor(&base, &NeighborConfig::with_share(share as f64 / 100.0, 603));
        let dests = generate(
            &base,
            &receiver,
            &TrafficConfig { count: 1_000, ..TrafficConfig::paper(604) },
        );
        let t1: BinaryTrie<Ip4, ()> = base.iter().map(|p| (*p, ())).collect();
        let clues: Vec<_> = dests
            .iter()
            .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|p| !p.is_empty()))
            .collect();
        let mut engine = ClueEngine::precomputed(
            &base,
            &receiver,
            EngineConfig::new(Family::Patricia, Method::Advance),
        );
        group.throughput(Throughput::Elements(dests.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("share_{share}")), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for (&dest, &clue) in dests.iter().zip(&clues) {
                    let mut cost = Cost::new();
                    engine.lookup(black_box(dest), clue, None, &mut cost);
                    total += cost.total();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
