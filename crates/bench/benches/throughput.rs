//! Lookup-pipeline throughput: the mutable scalar engine, the same
//! engine frozen (one call per packet), the frozen batch API, and the
//! sharded parallel network driver at 1/2/4 threads.
//!
//! The acceptance bar for this PR is batched-frozen >= 2x the scalar
//! engine in packets/second on the engine workload. Run with
//! `BENCH_TELEMETRY_OUT=BENCH_throughput.json` to dump the
//! measurements as JSON.

use std::hint::black_box;

use clue_bench::isp_pair;
use clue_core::{ClueEngine, Decision, EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{run_workload_parallel, Network, NetworkConfig, Topology};
use clue_trie::Cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_engine_pipelines(c: &mut Criterion) {
    let pair = isp_pair(10_000, 2_000, 42);
    let mut group = c.benchmark_group("lookup_pipeline");
    group.throughput(Throughput::Elements(pair.dests.len() as u64));

    let mut scalar = ClueEngine::precomputed(
        &pair.sender,
        &pair.receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let frozen = scalar.freeze().expect("regular hashed engine freezes");

    group.bench_function(BenchmarkId::new("advance", "scalar"), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for (&dest, &clue) in pair.dests.iter().zip(&pair.clues) {
                let mut cost = Cost::new();
                let bmp = scalar.lookup(black_box(dest), clue, None, &mut cost);
                total += bmp.map_or(0, |p| p.len() as u64);
            }
            black_box(total)
        })
    });

    group.bench_function(BenchmarkId::new("advance", "frozen-scalar"), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for (&dest, &clue) in pair.dests.iter().zip(&pair.clues) {
                let mut cost = Cost::new();
                let (bmp, _) = frozen.lookup(black_box(dest), clue, &mut cost);
                total += bmp.map_or(0, |p| p.len() as u64);
            }
            black_box(total)
        })
    });

    let mut out = vec![Decision::default(); pair.dests.len()];
    group.bench_function(BenchmarkId::new("advance", "frozen-batch"), |b| {
        b.iter(|| {
            let stats = frozen.lookup_batch(black_box(&pair.dests), &pair.clues, &mut out);
            black_box(stats.finals + out.len() as u64)
        })
    });
    group.finish();
}

fn bench_parallel_driver(c: &mut Criterion) {
    let (topo, edges) = Topology::backbone(4, 2);
    let mut cfg =
        NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
    cfg.seed = 42;
    let net: Network<clue_trie::Ip4> = Network::build(topo, cfg);
    let packets = 2_000;

    let mut group = c.benchmark_group("parallel_workload");
    group.throughput(Throughput::Elements(packets as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("backbone_4x2", threads), |b| {
            b.iter(|| {
                let stats =
                    run_workload_parallel(&net, &edges, packets, 7, threads).expect("freezable");
                black_box(stats.total_accesses)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_pipelines, bench_parallel_driver);
criterion_main!(benches);
