//! Figure 1 in wall-clock form: end-to-end packet forwarding across a
//! simulated backbone, clue-routed vs clue-less.

use clue_core::{EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{Network, NetworkConfig, Topology};
use clue_trie::Ip4;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_backbone_path");
    for method in [Method::Common, Method::Advance] {
        let (topo, edges) = Topology::backbone(8, 2);
        let mut cfg =
            NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Patricia, method));
        cfg.specifics_per_origin = 30;
        cfg.seed = 1999;
        let mut net: Network<Ip4> = Network::build(topo, cfg);
        let mut rng = StdRng::seed_from_u64(7);
        let dests: Vec<Ip4> =
            (0..500).map(|i| net.random_destination(i % edges.len(), &mut rng)).collect();
        group.throughput(Throughput::Elements(dests.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(method.label()), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for (i, &dest) in dests.iter().enumerate() {
                    let src = edges[(i + 3) % edges.len()];
                    let trace = net.route_packet(black_box(src), dest);
                    total += trace.total_cost();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path);
criterion_main!(benches);
