//! The fleet-scale topology simulator: building an internet-like
//! fleet of stride-compiled routers, and routing a seeded flow
//! workload through it at 1/2/4 worker cores (bit-identical shards, so
//! the scaling curve is pure orchestration cost).

use clue_netsim::{Fleet, FleetConfig, TopologyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const FLOWS: usize = 2_000;

fn bench_fleet_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_build");
    for routers in [128usize, 512] {
        group.bench_function(BenchmarkId::new("transit_stub", routers), |b| {
            b.iter(|| {
                let fleet = Fleet::build(FleetConfig::new(routers, 1999)).expect("builds");
                black_box(fleet.router_count())
            })
        });
    }
    group.finish();
}

fn bench_fleet_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_routing");
    group.throughput(Throughput::Elements(FLOWS as u64));
    let fleet = Fleet::build(FleetConfig::new(256, 1999)).expect("builds");
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(fleet.run_flows_sequential(FLOWS).hops))
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| black_box(fleet.run_flows(FLOWS, workers).stats.hops))
        });
    }

    let mut config = FleetConfig::new(256, 1999);
    config.topology = TopologyKind::Preferential;
    let pref = Fleet::build(config).expect("builds");
    group.bench_function("preferential", |b| {
        b.iter(|| black_box(pref.run_flows(FLOWS, 2).stats.hops))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_build, bench_fleet_routing);
criterion_main!(benches);
