//! Live-churn serving costs: how expensive is one epoch publish
//! (freeze + swap + retire), what does reading through an epoch pin add
//! over a bare frozen lookup, and what does the whole builder+readers
//! driver sustain. Run with `BENCH_TELEMETRY_OUT=BENCH_churn.json` to
//! dump the measurements as JSON.

use std::hint::black_box;

use clue_bench::isp_pair;
use clue_core::{ClueEngine, Decision, EngineConfig, EpochEngine, Method};
use clue_lookup::Family;
use clue_netsim::{run_churn, ChurnDriverConfig};
use clue_tablegen::{generate_churn, ChurnConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// One `publish_from` call: from-scratch freeze of the live engine plus
/// the atomic swap and retire bookkeeping. This is the per-batch price
/// the builder thread pays, so it bounds the sustainable update rate.
fn bench_epoch_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_publish");
    for n in [1_000usize, 5_000, 20_000] {
        let pair = isp_pair(n, 16, 42);
        let live = ClueEngine::precomputed(
            &pair.sender,
            &pair.receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let epochs = EpochEngine::new(&live).expect("regular hashed engine freezes");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("publish_from", n), |b| {
            b.iter(|| {
                let epoch = epochs.publish_from(black_box(&live)).unwrap();
                black_box(epoch)
            })
        });
        // Nothing pins, so every retired snapshot should already be
        // reclaimed; a growing backlog here would poison the numbers.
        epochs.reclaim();
        assert_eq!(epochs.retired_count(), 0);
    }
    group.finish();
}

/// A reader's view: pin + batched lookups + unpin, against the same
/// batch on a bare `FrozenEngine`. The difference is the whole epoch
/// machinery overhead on the serving path.
fn bench_pinned_lookups(c: &mut Criterion) {
    let pair = isp_pair(10_000, 2_000, 42);
    let scalar = ClueEngine::precomputed(
        &pair.sender,
        &pair.receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let frozen = scalar.freeze().expect("regular hashed engine freezes");
    let epochs = EpochEngine::new(&scalar).expect("regular hashed engine freezes");
    let mut reader = epochs.reader();
    let mut out = vec![Decision::default(); pair.dests.len()];

    let mut group = c.benchmark_group("epoch_read");
    group.throughput(Throughput::Elements(pair.dests.len() as u64));
    group.bench_function(BenchmarkId::new("advance", "bare-frozen"), |b| {
        b.iter(|| {
            let stats = frozen.lookup_batch(black_box(&pair.dests), &pair.clues, &mut out);
            black_box(stats.finals)
        })
    });
    group.bench_function(BenchmarkId::new("advance", "epoch-pinned"), |b| {
        b.iter(|| {
            let guard = reader.pin();
            let stats = guard.lookup_batch(black_box(&pair.dests), &pair.clues, &mut out);
            black_box(stats.finals)
        })
    });
    group.finish();
}

/// The full driver: a builder applying a BGP-style stream and
/// republishing per batch while readers serve continuously.
fn bench_churn_driver(c: &mut Criterion) {
    let sender = clue_tablegen::synthesize_ipv4(3_000, 7);
    let receiver = clue_tablegen::derive_neighbor(
        &sender,
        &clue_tablegen::NeighborConfig::same_isp(8),
    );
    let batches = generate_churn(&receiver, &ChurnConfig::bgp(400, 9));
    let updates: usize = batches.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("churn_driver");
    group.sample_size(10);
    group.throughput(Throughput::Elements(updates as u64));
    for readers in [1usize, 4] {
        let mut cfg = ChurnDriverConfig::new(readers, 11);
        cfg.check = false;
        group.bench_function(BenchmarkId::new("bgp_400", readers), |b| {
            b.iter(|| {
                let report = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap();
                black_box(report.lookups_total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_publish, bench_pinned_lookups, bench_churn_driver);
criterion_main!(benches);
