//! The stride-compiled fast path, swept across its two tuning axes:
//!
//! * **initial stride** 8 / 13 / 16 — how many top address bits the
//!   direct-indexed root array resolves in one read;
//! * **interleave factor** 1 / 4 / 8 / 16 — how many packets the
//!   batch loop keeps in flight per prefetch group (1 = prefetch off).
//!
//! The frozen batch pipeline on the same workload is the baseline the
//! acceptance bar compares against (`stride_pps > batch_pps`). The
//! sweep is what backs the `DEFAULT_INITIAL_BITS` /
//! `DEFAULT_INTERLEAVE` choices in `clue-core`; the table is
//! paper-scale (~40k prefixes, the order of the Mae-East snapshot) so
//! the layouts are measured out of cache, where they differ.

use std::hint::black_box;

use clue_bench::isp_pair;
use clue_core::{ClueEngine, Decision, EngineConfig, Method, StrideConfig};
use clue_lookup::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_stride_sweep(c: &mut Criterion) {
    let pair = isp_pair(40_000, 2_000, 42);
    let scalar = ClueEngine::precomputed(
        &pair.sender,
        &pair.receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let frozen = scalar.freeze().expect("regular hashed engine freezes");
    let mut out = vec![Decision::default(); pair.dests.len()];

    let mut group = c.benchmark_group("stride_sweep");
    group.throughput(Throughput::Elements(pair.dests.len() as u64));

    group.bench_function(BenchmarkId::new("baseline", "frozen-batch"), |b| {
        b.iter(|| {
            let stats = frozen.lookup_batch(black_box(&pair.dests), &pair.clues, &mut out);
            black_box(stats.finals + out.len() as u64)
        })
    });

    for initial in [8u8, 13, 16] {
        let stride = frozen
            .compile_stride(StrideConfig::new(initial, clue_core::DEFAULT_INNER_BITS))
            .expect("valid stride shape");
        for interleave in [1usize, 4, 8, 16] {
            let id = BenchmarkId::new(format!("initial{initial}"), format!("g{interleave}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    let stats = stride.lookup_batch_interleaved(
                        black_box(&pair.dests),
                        &pair.clues,
                        &mut out,
                        interleave,
                    );
                    black_box(stats.finals + out.len() as u64)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stride_sweep);
criterion_main!(benches);
