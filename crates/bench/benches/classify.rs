//! Section 7 in wall-clock form: packet classification with and without
//! clue-filters, against the naive and dst-grouped baselines.

use clue_classify::{Action, ClueClassifier, Filter, FlowKey, GroupedClassifier, RuleSet};
use clue_trie::{Cost, Ip4, Prefix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn rules(rng: &mut StdRng, n: u32) -> Vec<Filter<Ip4>> {
    let mut out: Vec<Filter<Ip4>> = (1..=n)
        .map(|i| {
            let len = *[8u8, 16, 16, 24].get(rng.random_range(0..4usize)).unwrap();
            let lo = rng.random_range(0u16..2000);
            Filter {
                dst: Prefix::new(
                    Ip4(rng.random_range(1u32..32) << 24 | rng.random::<u32>() & 0xFF_FF00),
                    len,
                ),
                dst_ports: lo..=lo.saturating_add(rng.random_range(0..500)),
                priority: i,
                ..Filter::default_rule(Action::Permit)
            }
        })
        .collect();
    out.push(Filter::default_rule(Action::Deny));
    out
}

fn bench_classify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(99);
    let shared = rules(&mut rng, 400);
    let upstream = RuleSet::new(shared.clone());
    let mut local = shared;
    for i in 0..20 {
        local.push(Filter {
            dst: "10.1.0.0/24".parse().unwrap(),
            priority: 500 + i,
            ..Filter::default_rule(Action::Mark(1))
        });
    }
    let cc = ClueClassifier::new(RuleSet::new(local.clone()), upstream.clone());
    let grouped = GroupedClassifier::new(RuleSet::new(local.clone()));
    let linear = RuleSet::new(local);

    let keys: Vec<(FlowKey<Ip4>, Option<usize>)> = (0..2_000)
        .map(|_| {
            let key = FlowKey::<Ip4> {
                src: Ip4(rng.random()),
                dst: Ip4(rng.random_range(1u32..32) << 24 | rng.random::<u32>() & 0xFFFFFF),
                src_port: rng.random(),
                dst_port: rng.random_range(0..4000),
                proto: 6,
            };
            let clue = upstream.classify_uncounted(&key).and_then(|f| upstream.position_of(f));
            (key, clue)
        })
        .collect();

    let mut group = c.benchmark_group("section7_classification");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for (key, _) in &keys {
                if linear.classify(black_box(key), &mut Cost::new()).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("grouped", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for (key, _) in &keys {
                if grouped.classify(black_box(key), &mut Cost::new()).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("clue", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for (key, clue) in &keys {
                if cc.classify(black_box(key), *clue, &mut Cost::new()).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
