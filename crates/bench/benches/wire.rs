//! Section 5.3 in wall-clock form: the cost of parsing / rewriting /
//! re-serializing clue-carrying headers at a router — the per-packet
//! header-processing overhead the scheme adds on the wire.

use clue_core::ClueHeader;
use clue_trie::{Ip4, Prefix};
use clue_wire::Ipv4Packet;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let packets: Vec<Vec<u8>> = (0..2_000)
        .map(|_| {
            let dst = Ip4(rng.random());
            let mut pkt = Ipv4Packet::new(Ip4(rng.random()), dst, 6);
            let len = rng.random_range(8u8..=24);
            pkt.clue = ClueHeader::with_clue(&Prefix::new(dst, len));
            pkt.to_bytes()
        })
        .collect();

    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Elements(packets.len() as u64));

    group.bench_function("parse", |b| {
        b.iter(|| {
            let mut lens = 0u64;
            for bytes in &packets {
                let pkt = Ipv4Packet::parse(black_box(bytes)).expect("valid");
                lens += pkt.clue.clue.map_or(0, |c| c.raw() as u64);
            }
            black_box(lens)
        })
    });

    group.bench_function("router_rewrite", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for bytes in &packets {
                let mut pkt = Ipv4Packet::parse(black_box(bytes)).expect("valid");
                pkt.ttl -= 1;
                pkt.clue = ClueHeader::with_clue(&Prefix::new(pkt.dst, 24));
                total += pkt.to_bytes().len();
            }
            black_box(total)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
