//! Packet filters: the 5-tuple rules of firewalls and QoS classifiers.

use core::fmt;
use core::ops::RangeInclusive;

use clue_trie::{Address, Prefix};

/// A 5-tuple flow key — what a classifier matches against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey<A: Address> {
    /// Source address.
    pub src: A,
    /// Destination address.
    pub dst: A,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, …).
    pub proto: u8,
}

/// What a matching filter does with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Let it through.
    Permit,
    /// Drop it.
    Deny,
    /// Mark it with a QoS class.
    Mark(u8),
}

/// One classification rule: prefix pair, port ranges, protocol,
/// priority (higher wins) and action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Filter<A: Address> {
    /// Source-prefix constraint.
    pub src: Prefix<A>,
    /// Destination-prefix constraint.
    pub dst: Prefix<A>,
    /// Source-port range.
    pub src_ports: RangeInclusive<u16>,
    /// Destination-port range.
    pub dst_ports: RangeInclusive<u16>,
    /// Protocol constraint (`None` = any).
    pub proto: Option<u8>,
    /// Priority: the matching filter with the highest value classifies
    /// the packet (ties broken by rule order).
    pub priority: u32,
    /// The filter's action.
    pub action: Action,
}

impl<A: Address> Filter<A> {
    /// The catch-all filter at the lowest priority.
    pub fn default_rule(action: Action) -> Self {
        Filter {
            src: Prefix::ROOT,
            dst: Prefix::ROOT,
            src_ports: 0..=u16::MAX,
            dst_ports: 0..=u16::MAX,
            proto: None,
            priority: 0,
            action,
        }
    }

    /// `true` iff the flow key satisfies every dimension.
    pub fn matches(&self, key: &FlowKey<A>) -> bool {
        self.src.contains(key.src)
            && self.dst.contains(key.dst)
            && self.src_ports.contains(&key.src_port)
            && self.dst_ports.contains(&key.dst_port)
            && self.proto.is_none_or(|p| p == key.proto)
    }

    /// `true` iff some flow key could match both filters: every
    /// dimension's constraints overlap. (Prefixes overlap iff one is a
    /// prefix of the other.)
    pub fn intersects(&self, other: &Self) -> bool {
        let prefixes_overlap = |a: &Prefix<A>, b: &Prefix<A>| !a.is_disjoint(b);
        let ranges_overlap = |a: &RangeInclusive<u16>, b: &RangeInclusive<u16>| {
            a.start() <= b.end() && b.start() <= a.end()
        };
        let protos_overlap = match (self.proto, other.proto) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        prefixes_overlap(&self.src, &other.src)
            && prefixes_overlap(&self.dst, &other.dst)
            && ranges_overlap(&self.src_ports, &other.src_ports)
            && ranges_overlap(&self.dst_ports, &other.dst_ports)
            && protos_overlap
    }

    /// `true` iff both filters describe the same *region and priority* —
    /// the “filters that both routers have” notion of Section 7. The
    /// action is allowed to differ (one router may mark where another
    /// permits).
    pub fn same_rule(&self, other: &Self) -> bool {
        self.src == other.src
            && self.dst == other.dst
            && self.src_ports == other.src_ports
            && self.dst_ports == other.dst_ports
            && self.proto == other.proto
            && self.priority == other.priority
    }
}

impl<A: Address> fmt::Display for Filter<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[p{} {}->{} sport {}..={} dport {}..={} proto {}]",
            self.priority,
            self.src,
            self.dst,
            self.src_ports.start(),
            self.src_ports.end(),
            self.dst_ports.start(),
            self.dst_ports.end(),
            self.proto.map_or("any".to_owned(), |p| p.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn key(src: &str, dst: &str, dport: u16) -> FlowKey<Ip4> {
        FlowKey {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 40000,
            dst_port: dport,
            proto: 6,
        }
    }

    fn web_filter() -> Filter<Ip4> {
        Filter {
            src: p("0.0.0.0/0"),
            dst: p("10.1.0.0/16"),
            src_ports: 0..=u16::MAX,
            dst_ports: 80..=80,
            proto: Some(6),
            priority: 10,
            action: Action::Permit,
        }
    }

    #[test]
    fn matching_checks_every_dimension() {
        let f = web_filter();
        assert!(f.matches(&key("1.2.3.4", "10.1.2.3", 80)));
        assert!(!f.matches(&key("1.2.3.4", "10.2.2.3", 80))); // wrong dst
        assert!(!f.matches(&key("1.2.3.4", "10.1.2.3", 443))); // wrong port
        let mut k = key("1.2.3.4", "10.1.2.3", 80);
        k.proto = 17;
        assert!(!f.matches(&k)); // wrong proto
    }

    #[test]
    fn default_rule_matches_everything() {
        let f = Filter::default_rule(Action::Deny);
        assert!(f.matches(&key("1.2.3.4", "200.9.9.9", 1234)));
        assert_eq!(f.priority, 0);
    }

    #[test]
    fn intersection_requires_overlap_in_every_dimension() {
        let web = web_filter();
        let mut ssh = web_filter();
        ssh.dst_ports = 22..=22;
        assert!(!web.intersects(&ssh), "disjoint port ranges");
        let mut sub = web_filter();
        sub.dst = p("10.1.2.0/24"); // nested prefix: overlaps
        assert!(web.intersects(&sub));
        let mut other_net = web_filter();
        other_net.dst = p("10.2.0.0/16");
        assert!(!web.intersects(&other_net), "disjoint destinations");
        let mut udp = web_filter();
        udp.proto = Some(17);
        assert!(!web.intersects(&udp), "disjoint protocols");
        let mut any_proto = web_filter();
        any_proto.proto = None;
        assert!(web.intersects(&any_proto));
    }

    #[test]
    fn same_rule_ignores_action() {
        let a = web_filter();
        let mut b = web_filter();
        b.action = Action::Mark(3);
        assert!(a.same_rule(&b));
        b.priority = 11;
        assert!(!a.same_rule(&b));
    }
}
