//! # clue-classify
//!
//! The Section 7 extension of *Routing with a Clue*: distributed
//! **packet classification**.
//!
//! > “When a packet header is classified by several filters (in QoS, or
//! > firewall applications), the clue being added to the packet is the
//! > filter by which the packet is classified at a router. The receiving
//! > router starts its classification process at the restricted domain
//! > of the clue-filter. Moreover, similarly to Claim 1, any filter that
//! > both routers have and that intersects the clue-filter can be
//! > discarded by R2 without any processing.”
//!
//! This crate provides the substrate (5-tuple [`Filter`]s, [`FlowKey`]s,
//! a counted linear-scan [`RuleSet`]) and the clue-assisted
//! [`ClueClassifier`] that precomputes, per upstream filter, the
//! restricted candidate list the receiving router needs to examine.
//!
//! ```
//! use clue_classify::{Action, ClueClassifier, Filter, FlowKey, RuleSet};
//! use clue_trie::{Cost, Ip4};
//!
//! let rules = vec![
//!     Filter::<Ip4> {
//!         dst: "10.1.0.0/16".parse().unwrap(),
//!         dst_ports: 80..=80,
//!         priority: 10,
//!         ..Filter::default_rule(Action::Permit)
//!     },
//!     Filter::default_rule(Action::Deny),
//! ];
//! let cc = ClueClassifier::new(RuleSet::new(rules.clone()), RuleSet::new(rules));
//!
//! let key = FlowKey::<Ip4> {
//!     src: "1.2.3.4".parse().unwrap(),
//!     dst: "10.1.2.3".parse().unwrap(),
//!     src_port: 40000,
//!     dst_port: 80,
//!     proto: 6,
//! };
//! let clue = cc.upstream().classify_uncounted(&key)
//!     .and_then(|f| cc.upstream().position_of(f));
//! let mut cost = Cost::new();
//! let class = cc.classify(&key, clue, &mut cost).unwrap();
//! assert_eq!(class.priority, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod filter;
mod grouped;

pub use classifier::{ClueClassifier, RuleSet};
pub use filter::{Action, Filter, FlowKey};
pub use grouped::GroupedClassifier;
