//! A middle-tier clue-less classifier baseline: rules bucketed by their
//! destination prefix in a trie.
//!
//! The linear scan in [`crate::RuleSet`] examines every rule; real
//! classifiers first narrow by one dimension. [`GroupedClassifier`]
//! walks the destination-prefix trie along the flow's destination
//! (counted per vertex) and then scans only the rules in the buckets it
//! passed (counted per rule). This is the fair clue-less comparison
//! point for the Section 7 clue classifier: the clue must beat *this*,
//! not just the naive scan.

use clue_trie::{Address, BinaryTrie, Cost};

use crate::classifier::RuleSet;
use crate::filter::{Filter, FlowKey};

/// Rules grouped by destination prefix in a trie.
#[derive(Debug)]
pub struct GroupedClassifier<A: Address> {
    rules: RuleSet<A>,
    /// Marked at each distinct rule destination prefix; payload = the
    /// indices (into `rules`) of the rules with exactly that dst.
    buckets: BinaryTrie<A, Vec<usize>>,
}

impl<A: Address> GroupedClassifier<A> {
    /// Builds the grouped index from a rule set.
    pub fn new(rules: RuleSet<A>) -> Self {
        let mut buckets: BinaryTrie<A, Vec<usize>> = BinaryTrie::new();
        for (i, rule) in rules.rules().iter().enumerate() {
            match buckets.get(&rule.dst) {
                Some(rid) => buckets.value_mut(rid).push(i),
                None => {
                    buckets.insert(rule.dst, vec![i]);
                }
            }
        }
        GroupedClassifier { rules, buckets }
    }

    /// The underlying rule set.
    pub fn rules(&self) -> &RuleSet<A> {
        &self.rules
    }

    /// Classifies: walk the dst trie (one access per vertex), then scan
    /// the rules of every bucket on the path (one access per rule),
    /// picking the highest-priority match.
    pub fn classify(&self, key: &FlowKey<A>, cost: &mut Cost) -> Option<&Filter<A>> {
        let mut best: Option<usize> = None;
        for rid in self.buckets.matching_routes(key.dst, cost) {
            for &i in self.buckets.value(rid) {
                cost.indexed_read();
                let rule = &self.rules.rules()[i];
                if rule.matches(key) {
                    let better = match best {
                        None => true,
                        // RuleSet is priority-sorted, so a smaller index
                        // is a higher (or equal, earlier) priority.
                        Some(b) => i < b,
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
        }
        best.map(|i| &self.rules.rules()[i])
    }

    /// Number of distinct destination buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Action;
    use clue_trie::{Ip4, Prefix};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn filter(dst: &str, dports: core::ops::RangeInclusive<u16>, prio: u32) -> Filter<Ip4> {
        Filter {
            src: "0.0.0.0/0".parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_ports: 0..=u16::MAX,
            dst_ports: dports,
            proto: None,
            priority: prio,
            action: Action::Permit,
        }
    }

    fn key(dst: &str, dport: u16) -> FlowKey<Ip4> {
        FlowKey {
            src: "1.2.3.4".parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 50000,
            dst_port: dport,
            proto: 6,
        }
    }

    #[test]
    fn grouped_agrees_with_linear_scan() {
        let rules = vec![
            filter("10.1.0.0/16", 80..=80, 30),
            filter("10.1.0.0/16", 0..=u16::MAX, 20),
            filter("10.0.0.0/8", 0..=u16::MAX, 10),
            filter("20.0.0.0/8", 22..=22, 25),
            Filter::default_rule(Action::Deny),
        ];
        let linear = RuleSet::new(rules.clone());
        let grouped = GroupedClassifier::new(RuleSet::new(rules));
        for k in [
            key("10.1.2.3", 80),
            key("10.1.2.3", 443),
            key("10.9.9.9", 80),
            key("20.1.1.1", 22),
            key("20.1.1.1", 23),
            key("99.9.9.9", 1),
        ] {
            let a = linear.classify_uncounted(&k);
            let b = grouped.classify(&k, &mut Cost::new());
            assert_eq!(a, b, "key {k:?}");
        }
        assert_eq!(grouped.bucket_count(), 4);
    }

    #[test]
    fn grouped_is_cheaper_than_linear_on_wide_rulesets() {
        // Many disjoint destination buckets: the trie walk touches few.
        let mut rules: Vec<Filter<Ip4>> = (0..200u32)
            .map(|i| filter(&format!("{}.{}.0.0/16", 1 + i / 250, i % 250), 0..=u16::MAX, i + 1))
            .collect();
        rules.push(Filter::default_rule(Action::Deny));
        let linear = RuleSet::new(rules.clone());
        let grouped = GroupedClassifier::new(RuleSet::new(rules));
        let k = key("1.100.5.5", 80);
        let (mut cl, mut cg) = (Cost::new(), Cost::new());
        assert_eq!(linear.classify(&k, &mut cl), grouped.classify(&k, &mut cg));
        assert!(
            cg.total() < cl.total(),
            "grouped {} !< linear {}",
            cg.total(),
            cl.total()
        );
    }

    #[test]
    fn randomized_equivalence() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut rules: Vec<Filter<Ip4>> = (0..80)
            .map(|i| {
                let len = *[8u8, 16, 24].get(rng.random_range(0..3usize)).unwrap();
                let dst = Prefix::new(Ip4(rng.random_range(1u32..8) << 24 | rng.random::<u32>() & 0xFFFF00), len);
                let lo = rng.random_range(0u16..500);
                Filter {
                    dst,
                    dst_ports: lo..=lo + rng.random_range(0..500u16),
                    priority: i + 1,
                    ..Filter::default_rule(Action::Permit)
                }
            })
            .collect();
        rules.push(Filter::default_rule(Action::Deny));
        let linear = RuleSet::new(rules.clone());
        let grouped = GroupedClassifier::new(RuleSet::new(rules));
        for _ in 0..400 {
            let k = key(
                &format!(
                    "{}.{}.{}.1",
                    rng.random_range(1..8),
                    rng.random_range(0..255),
                    rng.random_range(0..255)
                ),
                rng.random_range(0..1000),
            );
            assert_eq!(
                linear.classify_uncounted(&k),
                grouped.classify(&k, &mut Cost::new()),
                "key {k:?}"
            );
        }
    }
}
