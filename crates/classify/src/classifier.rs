//! Classifiers: the clue-less linear scan and the Section 7
//! clue-assisted variant.

use std::collections::HashMap;

use clue_trie::{Address, Cost};

use crate::filter::{Filter, FlowKey};

/// A priority-ordered rule set with a counted linear-scan classifier —
/// the straightforward baseline a firewall or QoS stage runs.
#[derive(Debug, Clone)]
pub struct RuleSet<A: Address> {
    /// Rules sorted by descending priority (stable on input order).
    rules: Vec<Filter<A>>,
}

impl<A: Address> RuleSet<A> {
    /// Builds a rule set (sorting by priority, descending).
    pub fn new(mut rules: Vec<Filter<A>>) -> Self {
        rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, highest priority first.
    pub fn rules(&self) -> &[Filter<A>] {
        &self.rules
    }

    /// Classifies by linear scan: one memory access per rule examined,
    /// stopping at the first (= highest-priority) match.
    pub fn classify(&self, key: &FlowKey<A>, cost: &mut Cost) -> Option<&Filter<A>> {
        for rule in &self.rules {
            cost.indexed_read();
            if rule.matches(key) {
                return Some(rule);
            }
        }
        None
    }

    /// Uncounted reference classification.
    pub fn classify_uncounted(&self, key: &FlowKey<A>) -> Option<&Filter<A>> {
        self.rules.iter().find(|r| r.matches(key))
    }

    /// Index of a rule equal (as a rule) to `f`, if present.
    pub fn position_of(&self, f: &Filter<A>) -> Option<usize> {
        self.rules.iter().position(|r| r.same_rule(f))
    }
}

/// The Section 7 clue classifier.
///
/// The clue is *the filter the upstream router classified the packet
/// by*. This router precomputes, per upstream filter `f`, the restricted
/// candidate list it needs to examine:
///
/// * only filters **intersecting** `f` can match (the packet lies in
///   `f`'s region);
/// * among those, any filter that **both routers have** with a priority
///   above `f`'s is discarded — had the packet matched it, the upstream
///   router would have classified by it instead (the Claim 1 analogue).
///
/// Classification then scans the (usually tiny) candidate list, at one
/// access each, plus the single clue-table access.
#[derive(Debug)]
pub struct ClueClassifier<A: Address> {
    local: RuleSet<A>,
    /// Per upstream-filter-id candidate lists (indices into `local`).
    candidates: HashMap<usize, Vec<usize>>,
    /// The upstream rule set (clue ids index into it).
    upstream: RuleSet<A>,
}

impl<A: Address> ClueClassifier<A> {
    /// Precomputes the candidate lists for every upstream filter.
    pub fn new(local: RuleSet<A>, upstream: RuleSet<A>) -> Self {
        let mut candidates = HashMap::with_capacity(upstream.len());
        for (fid, f) in upstream.rules().iter().enumerate() {
            let list: Vec<usize> = local
                .rules()
                .iter()
                .enumerate()
                .filter(|(_, g)| {
                    if !g.intersects(f) {
                        return false; // outside the clue's region
                    }
                    // The Claim 1 analogue: a shared higher-priority rule
                    // would have claimed the packet upstream.
                    let shared_higher = g.priority > f.priority
                        && upstream.rules().iter().any(|u| u.same_rule(g));
                    !shared_higher
                })
                .map(|(i, _)| i)
                .collect();
            candidates.insert(fid, list);
        }
        ClueClassifier { local, candidates, upstream }
    }

    /// The local rule set.
    pub fn local(&self) -> &RuleSet<A> {
        &self.local
    }

    /// The upstream rule set (what clue ids refer to).
    pub fn upstream(&self) -> &RuleSet<A> {
        &self.upstream
    }

    /// Mean candidate-list length over all upstream filters — the
    /// precomputed work bound.
    pub fn mean_candidates(&self) -> f64 {
        if self.candidates.is_empty() {
            return 0.0;
        }
        let total: usize = self.candidates.values().map(Vec::len).sum();
        total as f64 / self.candidates.len() as f64
    }

    /// Classifies with a clue: one access for the clue table, then one
    /// per candidate examined. A missing/unknown clue falls back to the
    /// full scan.
    pub fn classify(
        &self,
        key: &FlowKey<A>,
        clue: Option<usize>,
        cost: &mut Cost,
    ) -> Option<&Filter<A>> {
        let Some(fid) = clue else {
            return self.local.classify(key, cost);
        };
        cost.hash_probe(); // the mandatory clue-table consult
        let Some(list) = self.candidates.get(&fid) else {
            return self.local.classify(key, cost);
        };
        for &i in list {
            cost.indexed_read();
            if self.local.rules()[i].matches(key) {
                return Some(&self.local.rules()[i]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Action;
    use clue_trie::{Ip4, Prefix};

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn filter(dst: &str, dports: core::ops::RangeInclusive<u16>, prio: u32) -> Filter<Ip4> {
        Filter {
            src: p("0.0.0.0/0"),
            dst: p(dst),
            src_ports: 0..=u16::MAX,
            dst_ports: dports,
            proto: None,
            priority: prio,
            action: Action::Permit,
        }
    }

    fn key(dst: &str, dport: u16) -> FlowKey<Ip4> {
        FlowKey {
            src: "1.2.3.4".parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 50000,
            dst_port: dport,
            proto: 6,
        }
    }

    fn rules() -> Vec<Filter<Ip4>> {
        vec![
            filter("10.1.0.0/16", 80..=80, 30),
            filter("10.1.0.0/16", 0..=u16::MAX, 20),
            filter("10.0.0.0/8", 0..=u16::MAX, 10),
            filter("20.0.0.0/8", 22..=22, 25),
            Filter::default_rule(Action::Deny),
        ]
    }

    #[test]
    fn linear_scan_picks_highest_priority() {
        let rs = RuleSet::new(rules());
        let mut c = Cost::new();
        let f = rs.classify(&key("10.1.2.3", 80), &mut c).unwrap();
        assert_eq!(f.priority, 30);
        assert_eq!(c.total(), 1, "highest-priority rule matches first");
        let f2 = rs.classify(&key("10.9.9.9", 80), &mut Cost::new()).unwrap();
        assert_eq!(f2.priority, 10);
        let f3 = rs.classify(&key("99.9.9.9", 80), &mut Cost::new()).unwrap();
        assert_eq!(f3.action, Action::Deny);
    }

    #[test]
    fn clue_restricts_the_scan() {
        let shared = rules();
        let local = RuleSet::new(shared.clone());
        let upstream = RuleSet::new(shared);
        let cc = ClueClassifier::new(local, upstream);
        // Upstream classified by the 10/8 rule (priority 10, index 3 in
        // sorted order 30,25,20,10,0).
        let fid = cc.upstream().position_of(&filter("10.0.0.0/8", 0..=u16::MAX, 10)).unwrap();
        let k = key("10.9.9.9", 80);
        let mut with = Cost::new();
        let got = cc.classify(&k, Some(fid), &mut with).unwrap();
        assert_eq!(got.priority, 10);
        let mut without = Cost::new();
        let want = cc.local().classify(&k, &mut without).unwrap();
        assert_eq!(got, want);
        assert!(
            with.total() < without.total(),
            "clue {} !< full {}",
            with.total(),
            without.total()
        );
    }

    #[test]
    fn shared_higher_priority_rules_are_discarded() {
        let shared = rules();
        let cc = ClueClassifier::new(RuleSet::new(shared.clone()), RuleSet::new(shared));
        // Clue = default rule (priority 0): every shared higher-priority
        // rule is discarded, so the candidate list is exactly {default}.
        let fid = cc.upstream().position_of(&Filter::default_rule(Action::Deny)).unwrap();
        let k = key("99.9.9.9", 80);
        let mut c = Cost::new();
        let got = cc.classify(&k, Some(fid), &mut c).unwrap();
        assert_eq!(got.action, Action::Deny);
        // 1 clue access + 1 candidate examined.
        assert_eq!(c.total(), 2, "{c}");
    }

    #[test]
    fn receiver_only_rules_stay_candidates() {
        let upstream_rules = rules();
        let mut local_rules = upstream_rules.clone();
        // Receiver-only refinement with a high priority: must never be
        // discarded (the upstream could not have matched it).
        local_rules.push(filter("10.1.2.0/24", 0..=u16::MAX, 40));
        let cc = ClueClassifier::new(RuleSet::new(local_rules), RuleSet::new(upstream_rules));
        let fid = cc.upstream().position_of(&filter("10.1.0.0/16", 0..=u16::MAX, 20)).unwrap();
        let k = key("10.1.2.9", 9999);
        let got = cc.classify(&k, Some(fid), &mut Cost::new()).unwrap();
        assert_eq!(got.priority, 40, "the local refinement must win");
    }

    #[test]
    fn missing_clue_falls_back() {
        let shared = rules();
        let cc = ClueClassifier::new(RuleSet::new(shared.clone()), RuleSet::new(shared));
        let k = key("10.1.2.3", 80);
        let a = cc.classify(&k, None, &mut Cost::new()).cloned();
        let b = cc.classify(&k, Some(9999), &mut Cost::new()).cloned();
        let want = cc.local().classify_uncounted(&k).cloned();
        assert_eq!(a, want);
        assert_eq!(b, want);
    }

    #[test]
    fn randomized_equivalence_with_full_scan() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        // Random shared base + per-router extras.
        let mut base: Vec<Filter<Ip4>> = (0..60)
            .map(|i| {
                let len = *[8u8, 16, 24].get(rng.random_range(0..3usize)).unwrap();
                let lo = rng.random_range(0u16..1000);
                filter(
                    &format!("{}.{}.0.0/{len}", rng.random_range(1..20), rng.random_range(0..4)),
                    lo..=lo + rng.random_range(0..2000u16),
                    i + 1,
                )
            })
            .collect();
        base.push(Filter::default_rule(Action::Deny));
        let mut local_rules = base.clone();
        for i in 0..10 {
            local_rules.push(filter("10.1.0.0/24", 0..=u16::MAX, 100 + i));
        }
        let upstream = RuleSet::new(base);
        let cc = ClueClassifier::new(RuleSet::new(local_rules), upstream.clone());

        for _ in 0..500 {
            let k = key(
                &format!(
                    "{}.{}.{}.{}",
                    rng.random_range(1..20),
                    rng.random_range(0..4),
                    rng.random_range(0..4),
                    rng.random_range(0..255)
                ),
                rng.random_range(0..3000),
            );
            // Honest clue: the upstream's own classification.
            let clue = upstream.classify_uncounted(&k).and_then(|f| upstream.position_of(f));
            let want = cc.local().classify_uncounted(&k).cloned();
            let got = cc.classify(&k, clue, &mut Cost::new()).cloned();
            assert_eq!(got, want, "key {k:?} clue {clue:?}");
        }
    }
}
