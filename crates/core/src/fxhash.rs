//! A fast, non-cryptographic hasher for the per-packet path.
//!
//! `std`'s default SipHash is keyed and DoS-resistant, which is the right
//! default for long-lived maps fed by untrusted strings — and overkill
//! for the clue table, whose keys are 5-bit-encoded prefixes of addresses
//! the router is forwarding anyway. One clue-table probe is *the*
//! mandatory memory access of every clue-routed lookup (Section 3.2), so
//! the hash function in front of it should cost a handful of cycles, not
//! a full SipHash permutation.
//!
//! This is an FxHash-style multiply-xor mix (the folklore scheme used by
//! rustc's `FxHasher`): each 8-byte word of input is xored into the
//! state, rotated, and multiplied by a large odd constant. It makes no
//! collision-resistance claims; an adversarial sender can at worst
//! degrade its own neighbor table to linear probing, which the
//! `max_learned_entries` flood guard already bounds.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Multiplier from the 64-bit Fibonacci hashing constant (2^64 / φ),
/// forced odd so multiplication permutes the word.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const ROTATE: u32 = 26;

/// The hasher state: one 64-bit word folded over the input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add_word(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_word(v as u64);
        self.add_word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // One final mix so low-entropy single-word keys still spread
        // across the high bits HashMap uses for bucket selection.
        let h = self.hash;
        (h ^ (h >> 32)).wrapping_mul(SEED)
    }
}

/// Builds [`FxHasher`]s; plugs into `HashMap`/`HashSet` as the `S`
/// parameter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by the fast hasher — the per-packet-path map type.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` over the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::{Ip4, Prefix};
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        let a = Prefix::<Ip4>::new(Ip4(0x0A00_0000), 8);
        let b = Prefix::<Ip4>::new(Ip4(0x0A00_0000), 9);
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_stream_framing_matters() {
        let mut h1 = FxHasher::default();
        h1.write(b"ab");
        let mut h2 = FxHasher::default();
        h2.write(b"a");
        h2.write(b"b");
        // Chunked writes of the same bytes may legally differ (Hasher
        // contract) — but identical single writes must agree.
        let mut h3 = FxHasher::default();
        h3.write(b"ab");
        assert_eq!(h1.finish(), h3.finish());
        let _ = h2.finish();
    }

    #[test]
    fn long_inputs_cover_the_chunk_loop() {
        let long: Vec<u8> = (0..=255u8).collect();
        let mut h = FxHasher::default();
        h.write(&long);
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&long[..255]);
        assert_ne!(full, h2.finish());
    }

    #[test]
    fn map_and_set_work_end_to_end() {
        let mut m: FxHashMap<Prefix<Ip4>, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(Prefix::new(Ip4(i << 12), 24), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&Prefix::new(Ip4(i << 12), 24)), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7) && !s.contains(&8));
    }

    #[test]
    fn prefix_keys_spread_over_buckets() {
        // 4096 structured prefixes must not collapse onto a few finish()
        // values (the failure mode of a bad final mix).
        let mut seen: HashSet<u64> = HashSet::new();
        for i in 0..4096u32 {
            seen.insert(hash_of(&Prefix::<Ip4>::new(Ip4(i << 8), 24)));
        }
        assert!(seen.len() > 4000, "only {} distinct hashes", seen.len());
    }
}
