//! An entropy-compressed third compilation of a [`FrozenEngine`]: the
//! FIB-scale backend.
//!
//! The frozen engine spends 12 bytes per trie vertex; at a modern
//! 1M-prefix FIB (~5M vertices) that is ~60 MB of walk arena — far
//! outside any cache. Following the entropy-bound FIB-compression line
//! of work (Rétvári et al., SIGCOMM 2013), this module re-encodes the
//! *same* BFS-ordered trie in ~5 bits per vertex:
//!
//! * each vertex becomes a 4-bit **nibble** packed 16-to-a-word:
//!   left-child bit, right-child bit, route-marked bit, Claim-1
//!   continue bit;
//! * child pointers are erased entirely and recovered by **popcount
//!   rank**: the BFS layout assigns children sequentially, so the
//!   target of the j-th child edge (counting all edges laid out before
//!   it) is exactly vertex `j + 1`. A small rank directory (one `u32`
//!   per 64 vertices) makes each child step O(1) with at most four
//!   popcounts over one or two adjacent words;
//! * route prefixes are erased from the walk too: a route-marked
//!   vertex's prefix is always a prefix of the walked destination, so
//!   the BMP is reconstructed as `Prefix::of_address(dest, depth)` —
//!   the hot walk touches only the bitmap arena, never the dictionary;
//! * route *tags* (for [`Self::lookup_finish_tag`]) come from the same
//!   rank trick over the route-marked bits: the n-th marked vertex in
//!   BFS order carries tag n, matching the frozen engine's route table
//!   exactly, so the shared tag → prefix dictionary (and the runtime's
//!   precomputed hop tables) work unchanged;
//! * clue buckets are byte-identical to the stride engine's (built by
//!   the shared `build_buckets`), stored against the compressed arena.
//!
//! **The `Decision` contract is unchanged**: same BMP, same
//! [`LookupClass`], tick-for-tick the same [`Cost`] as the scalar
//! engine — the walk descends the identical vertices and charges one
//! [`Cost::trie_node`] per visit, honoring the Claim-1 bit at
//! single-bit granularity; the bucket probe charges the paper's single
//! mandatory [`Cost::hash_probe`]. Compression changes bytes touched,
//! never vertices charged. Equivalence is property-tested in
//! `tests/compressed_prop.rs`.

use std::sync::Arc;

use clue_telemetry::{CompressedTelemetry, LookupClass, LookupEvent, LookupTelemetry};
use clue_trie::{Address, Cost, Prefix};

use crate::engine::{ClueEngine, EngineStats, Method};
use crate::frozen::{bump, search_depth, Decision, FreezeError, FrozenEngine, NONE_NODE, NO_ROUTE};
use crate::prefetch::prefetch_read;
use crate::stride::{
    build_buckets, fold_hash, BucketDesc, BucketSlot, PacketOp, PreparedLookup, EMPTY_SLOT,
    FINAL_SLOT, MAX_INTERLEAVE, NO_TAG,
};

/// Vertices per packed 64-bit word (4 bits each).
const NODES_PER_WORD: u32 = 16;

/// Words per rank-directory block: one cumulative `u32` pair per 4
/// words (64 vertices), so a rank query scans at most 3 whole words
/// plus one partial — all within one cache line of quads.
const RANK_SPAN_WORDS: usize = 4;

/// Nibble bit 0: left child present.
const L_BIT: u64 = 1;
/// Nibble bit 2: vertex is route-marked.
const ROUTE_NIB: u64 = 4;
/// Nibble bit 3: Claim-1 continue bit.
const CONT_NIB: u64 = 8;

/// Both child bits of every nibble in a word.
const CHILD_MASK: u64 = 0x3333_3333_3333_3333;
/// The route bit of every nibble in a word.
const ROUTE_MASK: u64 = 0x4444_4444_4444_4444;

/// Shape of the compressed compilation. The bit-packed layout is fully
/// determined by the snapshot today; the struct exists so the
/// `CompiledBackend` plumbing stays uniform and future knobs (rank
/// span, hop-tag width) have a home.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressedConfig;

/// The entropy-compressed engine; see the module docs. Compiled from a
/// [`FrozenEngine`] via [`FrozenEngine::compile_compressed`],
/// read-only and `Sync` like its source. All compiled arrays live
/// behind [`Arc`]s, so [`Self::replicate`] is a refcount bump, not a
/// deep copy.
#[derive(Debug, Clone)]
pub struct CompressedEngine<A: Address> {
    method: Method,
    /// Vertices encoded in `quads`.
    node_count: u32,
    /// 4-bit vertex nibbles, 16 per word, BFS order.
    quads: Arc<Vec<u64>>,
    /// Child-edge rank directory: cumulative child-bit count before
    /// each [`RANK_SPAN_WORDS`] block.
    child_rank: Arc<Vec<u32>>,
    /// Route rank directory: cumulative route-bit count before each
    /// block (a route-marked vertex's tag is its route rank).
    route_rank: Arc<Vec<u32>>,
    /// Tag → prefix dictionary (control plane: `tag_prefixes`,
    /// hop-table construction). The hot walk never reads it.
    routes: Arc<Vec<Prefix<A>>>,
    /// Per-length probe windows into `bucket_slots` (shared layout
    /// with the stride engine — see `build_buckets`).
    bucket_desc: Arc<Vec<BucketDesc>>,
    /// All length windows back to back; slot 0 is the empty sentinel.
    bucket_slots: Arc<Vec<BucketSlot<A>>>,
    /// Per-bucket-slot FD tag into `routes`.
    bucket_fd_tags: Arc<Vec<u32>>,
    /// Vertices per BFS level (level 0 = root) — the CRAM byte map.
    level_nodes: Arc<Vec<u64>>,
    telemetry: Option<LookupTelemetry>,
    compressed_telemetry: Option<CompressedTelemetry>,
}

impl<A: Address> ClueEngine<A> {
    /// [`ClueEngine::freeze`] followed by
    /// [`FrozenEngine::compile_compressed`], as one call.
    pub fn freeze_compressed(
        &self,
        config: CompressedConfig,
    ) -> Result<CompressedEngine<A>, FreezeError> {
        Ok(self.freeze()?.compile_compressed(config))
    }
}

impl<A: Address> FrozenEngine<A> {
    /// Compiles this snapshot into a [`CompressedEngine`]: nibble
    /// bitmap arena, popcount rank directories, the shared clue
    /// buckets and tag dictionary. Pure function of the snapshot;
    /// infallible because every frozen layout compresses.
    pub fn compile_compressed(&self, _config: CompressedConfig) -> CompressedEngine<A> {
        let nodes = self.raw_nodes();
        let n = nodes.len();
        let words = n.div_ceil(NODES_PER_WORD as usize);
        let mut quads = vec![0u64; words.max(1)];
        for (i, node) in nodes.iter().enumerate() {
            let mut nib = 0u64;
            if node.children[0] != NONE_NODE {
                nib |= L_BIT;
            }
            if node.children[1] != NONE_NODE {
                nib |= L_BIT << 1;
            }
            if node.route_word & NO_ROUTE != NO_ROUTE {
                nib |= ROUTE_NIB;
            }
            if node.may_continue() {
                nib |= CONT_NIB;
            }
            quads[i / NODES_PER_WORD as usize] |= nib << ((i as u32 % NODES_PER_WORD) * 4);
        }

        let blocks = quads.len().div_ceil(RANK_SPAN_WORDS);
        let mut child_rank = Vec::with_capacity(blocks);
        let mut route_rank = Vec::with_capacity(blocks);
        let (mut c, mut r) = (0u64, 0u64);
        for (w, &word) in quads.iter().enumerate() {
            if w % RANK_SPAN_WORDS == 0 {
                child_rank.push(u32::try_from(c).expect("child count fits u32"));
                route_rank.push(u32::try_from(r).expect("route count fits u32"));
            }
            c += u64::from((word & CHILD_MASK).count_ones());
            r += u64::from((word & ROUTE_MASK).count_ones());
        }

        let buckets = build_buckets(self);
        let engine = CompressedEngine {
            method: self.method(),
            node_count: u32::try_from(n).expect("node count fits u32"),
            quads: Arc::new(quads),
            child_rank: Arc::new(child_rank),
            route_rank: Arc::new(route_rank),
            routes: Arc::new(self.raw_routes().to_vec()),
            bucket_desc: Arc::new(buckets.desc),
            bucket_slots: Arc::new(buckets.slots),
            bucket_fd_tags: Arc::new(buckets.fd_tags),
            level_nodes: Arc::new(self.level_node_counts()),
            telemetry: self.telemetry().cloned(),
            compressed_telemetry: None,
        };

        // The whole scheme rests on the BFS child-adjacency invariant
        // (the j-th child edge targets vertex j+1) and on route tags
        // equalling route ranks; verify both against the source
        // snapshot in debug builds.
        #[cfg(debug_assertions)]
        for (i, node) in nodes.iter().enumerate() {
            let i = i as u32;
            for b in 0..2usize {
                debug_assert_eq!(
                    engine.child(i, b),
                    node.children[b],
                    "rank-derived child diverges at vertex {i} bit {b}"
                );
            }
            if node.route_word & NO_ROUTE != NO_ROUTE {
                debug_assert_eq!(
                    engine.route_rank_of(i),
                    node.route_word & NO_ROUTE,
                    "route rank diverges from route index at vertex {i}"
                );
            }
        }

        engine
    }
}

impl<A: Address> CompressedEngine<A> {
    /// The compiled method flavour (inherited through the freeze).
    pub fn method(&self) -> Method {
        self.method
    }

    /// Vertices encoded in the arena.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Bytes of the walk arena: nibble quads plus both rank
    /// directories — what the compression gate measures. ~0.63
    /// bytes/vertex versus the frozen engine's 12.
    pub fn arena_bytes(&self) -> u64 {
        (self.quads.len() * core::mem::size_of::<u64>()
            + self.child_rank.len() * core::mem::size_of::<u32>()
            + self.route_rank.len() * core::mem::size_of::<u32>()) as u64
    }

    /// Bytes of the clue buckets (descriptors, payload slots, FD
    /// tags). Identical layout and size to the stride engine's.
    pub fn bucket_bytes(&self) -> u64 {
        (self.bucket_desc.len() * core::mem::size_of::<BucketDesc>()
            + self.bucket_slots.len() * core::mem::size_of::<BucketSlot<A>>()
            + self.bucket_fd_tags.len() * core::mem::size_of::<u32>()) as u64
    }

    /// Bytes of the tag → prefix dictionary. Control plane only: the
    /// hot walk reconstructs BMPs from the destination and never
    /// touches this array.
    pub fn dict_bytes(&self) -> u64 {
        (self.routes.len() * core::mem::size_of::<Prefix<A>>()) as u64
    }

    /// Total resident bytes of every compiled structure.
    pub fn memory_bytes(&self) -> usize {
        (self.arena_bytes() + self.bucket_bytes() + self.dict_bytes()) as usize
    }

    /// Vertices per BFS level (level 0 is the root) — the per-level
    /// byte map the CRAM analysis consumes.
    pub fn level_node_counts(&self) -> &[u64] {
        &self.level_nodes
    }

    /// Replaces the inherited per-lookup telemetry bundle.
    pub fn attach_telemetry(&mut self, telemetry: LookupTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Attaches the compressed-path bundle (batch counters + layout
    /// gauges; the layout gauges are set immediately).
    pub fn attach_compressed_telemetry(&mut self, telemetry: CompressedTelemetry) {
        telemetry.record_layout(
            self.arena_bytes(),
            self.bucket_bytes(),
            self.dict_bytes(),
            u64::from(self.node_count),
            0.0,
        );
        self.compressed_telemetry = Some(telemetry);
    }

    /// The attached per-lookup telemetry, if any.
    pub fn telemetry(&self) -> Option<&LookupTelemetry> {
        self.telemetry.as_ref()
    }

    /// The attached compressed-path telemetry, if any.
    pub fn compressed_telemetry(&self) -> Option<&CompressedTelemetry> {
        self.compressed_telemetry.as_ref()
    }

    /// A per-core replica with both telemetry bundles detached. The
    /// arenas are `Arc`-shared: constant-time, no deep copy.
    pub fn replicate(&self) -> CompressedEngine<A> {
        let mut replica = self.clone();
        replica.telemetry = None;
        replica.compressed_telemetry = None;
        replica
    }

    /// The tag → prefix dictionary behind [`Self::lookup_finish_tag`]
    /// — identical content to the frozen/stride tables compiled from
    /// the same snapshot.
    pub fn tag_prefixes(&self) -> &[Prefix<A>] {
        &self.routes
    }

    /// The 4-bit nibble of vertex `node`.
    #[inline]
    fn nibble(&self, node: u32) -> u64 {
        (self.quads[(node / NODES_PER_WORD) as usize] >> ((node % NODES_PER_WORD) * 4)) & 0xF
    }

    /// Child-edge rank strictly before vertex `node`'s own left-child
    /// bit: the number of child edges laid out before this vertex's.
    #[inline]
    fn child_rank_before(&self, node: u32) -> u32 {
        let w = (node / NODES_PER_WORD) as usize;
        let mut rank = self.child_rank[w / RANK_SPAN_WORDS];
        for ww in (w - w % RANK_SPAN_WORDS)..w {
            rank += (self.quads[ww] & CHILD_MASK).count_ones();
        }
        let o = (node % NODES_PER_WORD) * 4;
        let below = self.quads[w] & CHILD_MASK & ((1u64 << o) - 1);
        rank + below.count_ones()
    }

    /// The `bit`-side child of vertex `node` ([`NONE_NODE`] if
    /// absent), recovered by rank: with BFS layout the j-th child edge
    /// overall targets vertex `j + 1`.
    #[inline]
    fn child(&self, node: u32, bit: usize) -> u32 {
        let nib = self.nibble(node);
        if (nib >> bit) & 1 == 0 {
            return NONE_NODE;
        }
        // Edges before this one: all edges before this vertex, plus
        // the vertex's own left edge when descending right.
        let rank = self.child_rank_before(node) + ((nib as u32) & 1) * bit as u32;
        rank + 1
    }

    /// Route rank strictly before vertex `node` — equal to `node`'s
    /// route tag when `node` is route-marked. Only queried on the
    /// tagged path (once per resolved walk), never per step.
    #[inline]
    fn route_rank_of(&self, node: u32) -> u32 {
        let w = (node / NODES_PER_WORD) as usize;
        let mut rank = self.route_rank[w / RANK_SPAN_WORDS];
        for ww in (w - w % RANK_SPAN_WORDS)..w {
            rank += (self.quads[ww] & ROUTE_MASK).count_ones();
        }
        let o = (node % NODES_PER_WORD) * 4;
        let below = self.quads[w] & ROUTE_MASK & ((1u64 << o) - 1);
        rank + below.count_ones()
    }

    /// The full (clueless) lookup on the compressed arena: the frozen
    /// engine's root-down bit walk, one [`Cost::trie_node`] per vertex
    /// visited, with the BMP reconstructed from the destination — a
    /// route-marked vertex at depth `d` on `dest`'s path *is* the
    /// prefix `dest/d`.
    #[inline(never)]
    fn common_walk(&self, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        cost.trie_node();
        let mut node = 0u32;
        let mut best =
            if self.nibble(0) & ROUTE_NIB != 0 { Some(0u8) } else { None };
        for depth in 0..A::BITS {
            let c = self.child(node, dest.bit(depth) as usize);
            if c == NONE_NODE {
                break;
            }
            node = c;
            cost.trie_node();
            if self.nibble(node) & ROUTE_NIB != 0 {
                best = Some(depth + 1);
            }
        }
        best.map(|len| Prefix::of_address(dest, len))
    }

    /// The continued walk from a clue vertex at depth `depth`,
    /// honoring the Claim-1 continue bit at single-bit granularity;
    /// charges identically to [`FrozenEngine`]'s `walk_from`. Valid
    /// only when the clue contains `dest` (guaranteed before any
    /// probe), so reconstructed prefixes lie on `dest`'s path.
    #[inline(never)]
    fn walk_from(&self, start: u32, mut depth: u8, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        cost.trie_node();
        let mut node = start;
        let mut nib = self.nibble(node);
        let mut best = if nib & ROUTE_NIB != 0 { Some(depth) } else { None };
        loop {
            if nib & CONT_NIB == 0 || depth >= A::BITS {
                break;
            }
            let c = self.child(node, dest.bit(depth) as usize);
            if c == NONE_NODE {
                break;
            }
            node = c;
            depth += 1;
            cost.trie_node();
            nib = self.nibble(node);
            if nib & ROUTE_NIB != 0 {
                best = Some(depth);
            }
        }
        best.map(|len| Prefix::of_address(dest, len))
    }

    /// [`Self::common_walk`] resolving to the deepest route *tag*
    /// ([`NO_TAG`] if none) — one rank query at the end instead of a
    /// dictionary load per deepening step.
    #[inline(never)]
    fn common_walk_tag(&self, dest: A, cost: &mut Cost) -> u32 {
        cost.trie_node();
        let mut node = 0u32;
        let mut best = if self.nibble(0) & ROUTE_NIB != 0 { 0u32 } else { NONE_NODE };
        for depth in 0..A::BITS {
            let c = self.child(node, dest.bit(depth) as usize);
            if c == NONE_NODE {
                break;
            }
            node = c;
            cost.trie_node();
            if self.nibble(node) & ROUTE_NIB != 0 {
                best = node;
            }
        }
        if best == NONE_NODE {
            NO_TAG
        } else {
            self.route_rank_of(best)
        }
    }

    /// [`Self::walk_from`] resolving to the deepest route tag.
    #[inline(never)]
    fn walk_from_tag(&self, start: u32, mut depth: u8, dest: A, cost: &mut Cost) -> u32 {
        cost.trie_node();
        let mut node = start;
        let mut nib = self.nibble(node);
        let mut best = if nib & ROUTE_NIB != 0 { node } else { NONE_NODE };
        loop {
            if nib & CONT_NIB == 0 || depth >= A::BITS {
                break;
            }
            let c = self.child(node, dest.bit(depth) as usize);
            if c == NONE_NODE {
                break;
            }
            node = c;
            depth += 1;
            cost.trie_node();
            nib = self.nibble(node);
            if nib & ROUTE_NIB != 0 {
                best = node;
            }
        }
        if best == NONE_NODE {
            NO_TAG
        } else {
            self.route_rank_of(best)
        }
    }

    /// Probes the flat clue window for length `len` from counter `k` —
    /// the stride engine's probe, verbatim, over the shared layout.
    #[inline]
    fn bucket_get_from(&self, len: u8, bits: A, mut k: u32) -> Option<&BucketSlot<A>> {
        let d = self.bucket_desc[len as usize];
        loop {
            let slot = &self.bucket_slots[(d.offset + (k & d.mask)) as usize];
            if slot.cont == EMPTY_SLOT {
                return None;
            }
            if slot.key == bits {
                return Some(slot);
            }
            k = k.wrapping_add(1);
        }
    }

    /// The home probe counter for `bits` in length `len`'s window.
    #[inline]
    fn bucket_home(&self, len: u8, bits: A) -> u32 {
        (fold_hash(bits) >> self.bucket_desc[len as usize].shift) as u32
    }

    #[inline]
    fn bucket_get(&self, len: u8, bits: A) -> Option<&BucketSlot<A>> {
        self.bucket_get_from(len, bits, self.bucket_home(len, bits))
    }

    /// [`Self::bucket_get_from`] returning the absolute slot index so
    /// the caller can read the parallel FD tag.
    #[inline]
    fn bucket_probe_from(&self, len: u8, bits: A, mut k: u32) -> Option<usize> {
        let d = self.bucket_desc[len as usize];
        loop {
            let i = (d.offset + (k & d.mask)) as usize;
            let slot = &self.bucket_slots[i];
            if slot.cont == EMPTY_SLOT {
                return None;
            }
            if slot.key == bits {
                return Some(i);
            }
            k = k.wrapping_add(1);
        }
    }

    /// One compressed lookup: the same flow (and the same charges) as
    /// [`FrozenEngine::lookup`], on the bit-packed arena.
    #[inline]
    pub fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        let s = match (self.method, clue) {
            (Method::Common, _) | (_, None) => {
                return (self.common_walk(dest, cost), LookupClass::Clueless);
            }
            (_, Some(s)) => s,
        };
        if !s.contains(dest) {
            return (self.common_walk(dest, cost), LookupClass::Malformed);
        }
        cost.hash_probe();
        match self.bucket_get(s.len(), s.bits()) {
            Some(slot) => {
                if slot.cont == FINAL_SLOT {
                    (slot.fd(), LookupClass::Final)
                } else {
                    let found = self.walk_from(slot.cont, s.len(), dest, cost);
                    (found.or(slot.fd()), LookupClass::Continued)
                }
            }
            None => (self.common_walk(dest, cost), LookupClass::Miss),
        }
    }

    /// As [`Self::lookup`], packaged as a [`Decision`].
    pub fn lookup_decision(&self, dest: A, clue: Option<Prefix<A>>) -> Decision<A> {
        let mut cost = Cost::new();
        let (bmp, class) = self.lookup(dest, clue, &mut cost);
        Decision { bmp, class, cost }
    }

    /// Decodes one packet, prefetching the first line its lookup will
    /// touch (the root quad word or the clue-bucket home slot).
    #[inline]
    fn decode_packet(&self, dest: A, clue: Option<Prefix<A>>) -> PacketOp {
        match (self.method, clue) {
            (Method::Common, _) | (_, None) => {
                prefetch_read(&self.quads[0]);
                PacketOp::Walk(LookupClass::Clueless)
            }
            (_, Some(s)) => {
                if s.contains(dest) {
                    let len = s.len();
                    let k = self.bucket_home(len, s.bits());
                    let d = self.bucket_desc[len as usize];
                    prefetch_read(&self.bucket_slots[(d.offset + (k & d.mask)) as usize]);
                    PacketOp::Probe { k, len }
                } else {
                    prefetch_read(&self.quads[0]);
                    PacketOp::Walk(LookupClass::Malformed)
                }
            }
        }
    }

    /// Resolves a packet decoded by [`Self::decode_packet`]; same
    /// results and charges as [`Self::lookup`].
    #[inline]
    fn finish_packet(
        &self,
        op: PacketOp,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        match op {
            PacketOp::Walk(class) => (self.common_walk(dest, cost), class),
            PacketOp::Probe { k, len } => {
                cost.hash_probe();
                let s = clue.expect("a probe op is only decoded from a present clue");
                match self.bucket_get_from(len, s.bits(), k) {
                    Some(slot) => {
                        if slot.cont == FINAL_SLOT {
                            (slot.fd(), LookupClass::Final)
                        } else {
                            let found = self.walk_from(slot.cont, len, dest, cost);
                            (found.or(slot.fd()), LookupClass::Continued)
                        }
                    }
                    None => (self.common_walk(dest, cost), LookupClass::Miss),
                }
            }
        }
    }

    /// Decode-and-prefetch half of the split lookup; see
    /// [`crate::StrideEngine::lookup_prepare`].
    #[inline]
    pub fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup {
        PreparedLookup(self.decode_packet(dest, clue))
    }

    /// Resolves a prepared lookup; same results and charges as
    /// [`Self::lookup`] on the same `(dest, clue)`.
    #[inline]
    pub fn lookup_finish(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        self.finish_packet(op.0, dest, clue, cost)
    }

    /// As [`Self::lookup_finish`], resolving to a dense route tag into
    /// [`Self::tag_prefixes`] ([`NO_TAG`] for no match) — the form the
    /// serving runtime's precomputed hop tables consume. Identical
    /// class and [`Cost`] charges.
    #[inline]
    pub fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass) {
        match op.0 {
            PacketOp::Walk(class) => (self.common_walk_tag(dest, cost), class),
            PacketOp::Probe { k, len } => {
                cost.hash_probe();
                let s = clue.expect("a probe op is only decoded from a present clue");
                match self.bucket_probe_from(len, s.bits(), k) {
                    Some(i) => {
                        let slot = &self.bucket_slots[i];
                        if slot.cont == FINAL_SLOT {
                            (self.bucket_fd_tags[i], LookupClass::Final)
                        } else {
                            let found = self.walk_from_tag(slot.cont, len, dest, cost);
                            let tag = if found != NO_TAG { found } else { self.bucket_fd_tags[i] };
                            (tag, LookupClass::Continued)
                        }
                    }
                    None => (self.common_walk_tag(dest, cost), LookupClass::Miss),
                }
            }
        }
    }

    /// Batched lookup at the default interleave; see
    /// [`Self::lookup_batch_interleaved`].
    ///
    /// # Panics
    /// Panics unless `dests`, `clues` and `out` have equal lengths.
    pub fn lookup_batch(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
    ) -> EngineStats {
        self.lookup_batch_interleaved(dests, clues, out, crate::stride::DEFAULT_INTERLEAVE)
    }

    /// Batched lookup in lockstep prefetch groups — the stride batch
    /// loop over the compressed arena. Interleave is a latency
    /// treatment, not a semantic one: decisions and stats are
    /// identical at every group size.
    ///
    /// # Panics
    /// Panics unless `dests`, `clues` and `out` have equal lengths.
    pub fn lookup_batch_interleaved(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
    ) -> EngineStats {
        assert_eq!(dests.len(), clues.len(), "one clue slot per destination");
        assert_eq!(dests.len(), out.len(), "one decision slot per destination");
        let group = group.max(1);
        let (stats, groups, prefetches) = match &self.telemetry {
            None => self.batch_core(dests, clues, out, group, |_, _, _| {}),
            Some(t) => self.batch_core(dests, clues, out, group, |clue_len, class, cost| {
                t.record(&LookupEvent {
                    clue_len,
                    class,
                    search_depth: search_depth(class, cost),
                    cache_hit: None,
                    memory_references: cost.total(),
                });
            }),
        };
        if let Some(ct) = &self.compressed_telemetry {
            ct.record_batch(dests.len() as u64, groups, prefetches);
        }
        stats
    }

    /// The batch loop body (two passes per group when interleaving).
    fn batch_core(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
        mut record: impl FnMut(Option<u8>, LookupClass, Cost),
    ) -> (EngineStats, u64, u64) {
        let mut stats = EngineStats::default();
        let mut groups = 0u64;
        let mut prefetches = 0u64;
        if group <= 1 {
            groups = dests.len() as u64;
            for ((&dest, &clue), slot) in dests.iter().zip(clues).zip(out.iter_mut()) {
                let mut cost = Cost::new();
                let (bmp, class) = self.lookup(dest, clue, &mut cost);
                bump(&mut stats, class);
                record(clue.map(|s| s.len()), class, cost);
                *slot = Decision { bmp, class, cost };
            }
        } else {
            let group = group.min(MAX_INTERLEAVE);
            let mut ops = [PacketOp::Walk(LookupClass::Clueless); MAX_INTERLEAVE];
            for ((dests, clues), out) in
                dests.chunks(group).zip(clues.chunks(group)).zip(out.chunks_mut(group))
            {
                groups += 1;
                prefetches += dests.len() as u64;
                for ((&dest, &clue), op) in dests.iter().zip(clues).zip(ops.iter_mut()) {
                    *op = self.decode_packet(dest, clue);
                }
                for (((&dest, &clue), slot), &op) in
                    dests.iter().zip(clues).zip(out.iter_mut()).zip(&ops)
                {
                    let mut cost = Cost::new();
                    let (bmp, class) = self.finish_packet(op, dest, clue, &mut cost);
                    bump(&mut stats, class);
                    record(clue.map(|s| s.len()), class, cost);
                    *slot = Decision { bmp, class, cost };
                }
            }
        }
        (stats, groups, prefetches)
    }

    /// As [`Self::lookup_batch`], resizing and reusing a
    /// caller-supplied buffer.
    pub fn lookup_batch_into(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut Vec<Decision<A>>,
    ) -> EngineStats {
        out.clear();
        out.resize(dests.len(), Decision::default());
        self.lookup_batch(dests, clues, out)
    }

    /// Allocating convenience over [`Self::lookup_batch`].
    pub fn lookup_batch_vec(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
    ) -> (Vec<Decision<A>>, EngineStats) {
        let mut out = Vec::new();
        let stats = self.lookup_batch_into(dests, clues, &mut out);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    fn tables() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
        let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
        let receiver = vec![
            p("10.0.0.0/8"),
            p("10.1.0.0/16"),
            p("10.1.2.0/24"),
            p("10.2.0.0/16"),
            p("192.168.0.0/16"),
        ];
        (sender, receiver)
    }

    fn check_parity(method: Method, dest: Ip4, clue: Option<Prefix<Ip4>>) {
        let (sender, receiver) = tables();
        let mut scalar =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(Family::Regular, method));
        let frozen = scalar.freeze().unwrap();
        let compressed = frozen.compile_compressed(CompressedConfig);
        let mut sc = Cost::new();
        let want = scalar.lookup(dest, clue, None, &mut sc);
        let d = compressed.lookup_decision(dest, clue);
        assert_eq!(d.bmp, want, "{method} bmp for {dest} clue {clue:?}");
        assert_eq!(d.cost, sc, "{method} cost for {dest} clue {clue:?}");
        assert_eq!(d, frozen.lookup_decision(dest, clue), "compressed == frozen decision");
    }

    #[test]
    fn parity_across_methods_and_classes() {
        for method in [Method::Common, Method::Simple, Method::Advance] {
            check_parity(method, a("10.1.2.3"), None); // clueless
            check_parity(method, a("10.1.2.3"), Some(p("10.1.0.0/16"))); // continued
            check_parity(method, a("10.1.99.1"), Some(p("10.1.0.0/16")));
            check_parity(method, a("192.168.3.4"), Some(p("192.168.0.0/16"))); // final
            check_parity(method, a("10.9.9.9"), Some(p("10.0.0.0/8")));
            check_parity(method, a("10.1.2.3"), Some(p("192.168.0.0/16"))); // malformed
            check_parity(method, a("10.1.2.3"), Some(p("10.1.2.0/24"))); // miss
            check_parity(method, a("11.1.2.3"), None); // no route
        }
    }

    #[test]
    fn tags_resolve_to_the_same_prefix_as_lookup() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let compressed = scalar.freeze_compressed(CompressedConfig).unwrap();
        let cases: Vec<(Ip4, Option<Prefix<Ip4>>)> = vec![
            (a("10.1.2.3"), None),
            (a("10.1.2.3"), Some(p("10.1.0.0/16"))),
            (a("192.168.3.4"), Some(p("192.168.0.0/16"))),
            (a("10.1.2.3"), Some(p("192.168.0.0/16"))),
            (a("10.1.2.3"), Some(p("10.1.2.0/24"))),
            (a("11.1.2.3"), None),
        ];
        for (dest, clue) in cases {
            let mut c1 = Cost::new();
            let (bmp, class) = compressed.lookup(dest, clue, &mut c1);
            let mut c2 = Cost::new();
            let op = compressed.lookup_prepare(dest, clue);
            let (tag, tag_class) = compressed.lookup_finish_tag(op, dest, clue, &mut c2);
            let tag_bmp =
                (tag != NO_TAG).then(|| compressed.tag_prefixes()[tag as usize]);
            assert_eq!(tag_bmp, bmp, "{dest} {clue:?}");
            assert_eq!(tag_class, class, "{dest} {clue:?}");
            assert_eq!(c1, c2, "cost parity for {dest} {clue:?}");
        }
    }

    #[test]
    fn interleave_is_semantically_inert() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let compressed = scalar.freeze_compressed(CompressedConfig).unwrap();
        let dests = vec![a("10.1.2.3"), a("192.168.3.4"), a("10.1.2.3"), a("7.7.7.7")];
        let clues = vec![
            Some(p("10.1.0.0/16")),
            Some(p("192.168.0.0/16")),
            Some(p("192.168.0.0/16")), // malformed
            None,
        ];
        let (want, want_stats) = compressed.lookup_batch_vec(&dests, &clues);
        for group in [0, 1, 2, 3, 8, 64] {
            let mut out = vec![Decision::default(); dests.len()];
            let stats = compressed.lookup_batch_interleaved(&dests, &clues, &mut out, group);
            assert_eq!(out, want, "group {group}");
            assert_eq!(stats, want_stats, "group {group}");
        }
        assert_eq!(
            (want_stats.continued, want_stats.finals, want_stats.malformed, want_stats.clueless),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn arena_is_an_order_of_magnitude_smaller_than_frozen() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        let compressed = frozen.compile_compressed(CompressedConfig);
        assert_eq!(compressed.node_count(), frozen.node_count());
        let frozen_arena = frozen.node_count() * 12;
        assert!(
            compressed.arena_bytes() * 3 < frozen_arena as u64,
            "compressed arena {} vs frozen {}",
            compressed.arena_bytes(),
            frozen_arena
        );
        let levels = compressed.level_node_counts();
        assert_eq!(levels[0], 1, "level 0 is the root");
        assert_eq!(
            levels.iter().sum::<u64>(),
            compressed.node_count() as u64,
            "levels partition the arena"
        );
    }

    #[test]
    fn telemetry_streams_are_recorded() {
        use clue_telemetry::Registry;
        let (sender, receiver) = tables();
        let mut scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let registry = Registry::new();
        scalar.instrument(&registry);
        let mut compressed = scalar.freeze_compressed(CompressedConfig).unwrap();
        assert!(compressed.telemetry().is_some(), "lookup telemetry inherited");
        compressed.attach_compressed_telemetry(CompressedTelemetry::registered(
            &registry,
            "clue_compressed",
        ));
        let dests = vec![a("10.1.2.3"), a("192.168.3.4"), a("10.9.9.9")];
        let clues = vec![Some(p("10.1.0.0/16")), Some(p("192.168.0.0/16")), None];
        let mut out = vec![Decision::default(); dests.len()];
        let stats = compressed.lookup_batch_interleaved(&dests, &clues, &mut out, 2);
        let t = compressed.telemetry().unwrap();
        assert_eq!(t.lookups_total.get(), 3);
        assert_eq!(t.class_count(LookupClass::Final), stats.finals);
        let ct = compressed.compressed_telemetry().unwrap();
        assert_eq!(ct.batches_total.get(), 1);
        assert_eq!(ct.packets_total.get(), 3);
        assert_eq!(ct.groups_total.get(), 2);
        assert_eq!(ct.arena_bytes.get(), compressed.arena_bytes() as f64);
    }

    #[test]
    fn replicate_shares_the_arena() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let compressed = scalar.freeze_compressed(CompressedConfig).unwrap();
        let replica = compressed.replicate();
        assert!(Arc::ptr_eq(&compressed.quads, &replica.quads), "arena is shared, not copied");
        assert!(replica.telemetry().is_none());
        assert_eq!(
            replica.lookup_decision(a("10.1.2.3"), Some(p("10.1.0.0/16"))),
            compressed.lookup_decision(a("10.1.2.3"), Some(p("10.1.0.0/16")))
        );
    }
}
