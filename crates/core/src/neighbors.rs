//! Sharing clue tables across several neighbors — Section 3.4.
//!
//! A router with `d` neighbors can keep the clue state in four ways:
//!
//! * [`Strategy::Separate`] — one full table per neighbor (maximum
//!   precision for the Advance method, `d×` the space);
//! * [`Strategy::Union`] — a single table over the union of all clue
//!   sets; Claim 1 must then hold **with respect to every neighbor** that
//!   can send the clue, so some clues that would be final per-neighbor
//!   become problematic;
//! * [`Strategy::Bitmap`] — a single table whose entries carry one bit
//!   per neighbor saying “final for you” or “continue” (the paper notes
//!   that when a clue implies the BMP for several neighbors, it implies
//!   the *same* BMP for all — the FD field can be shared);
//! * [`Strategy::SubTables`] — a common table for the clues that behave
//!   identically for every neighbor, plus a small per-neighbor table for
//!   the rest; a lookup may need to consult both (up to two probes).
//!
//! Continuations here use the trie walk (the paper's canonical `Ptr`
//! into the receiver's trie); the family-specialised continuations live
//! in [`crate::ClueEngine`].

use std::collections::{HashMap, HashSet};

use clue_trie::{Address, BinaryTrie, Cost, Prefix};

use crate::classify::{classify, Classification};

/// Table-sharing strategy for a multi-neighbor router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One independent clue table per neighbor.
    Separate,
    /// One table over the union of clue sets; Claim 1 checked against
    /// all senders of each clue.
    Union,
    /// One table with a per-neighbor continue/final bit.
    Bitmap,
    /// A shared table for uniformly-behaving clues plus per-neighbor
    /// overflow tables.
    SubTables,
}

impl Strategy {
    /// All four strategies.
    pub fn all() -> [Strategy; 4] {
        [Strategy::Separate, Strategy::Union, Strategy::Bitmap, Strategy::SubTables]
    }
}

impl core::fmt::Display for Strategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Strategy::Separate => "separate",
            Strategy::Union => "union",
            Strategy::Bitmap => "bitmap",
            Strategy::SubTables => "sub-tables",
        })
    }
}

/// One entry of the multi-neighbor table: shared FD, a trie continuation
/// point, and the per-neighbor behaviour.
#[derive(Debug, Clone)]
struct MultiEntry<A: Address> {
    fd: Option<Prefix<A>>,
    /// Continue-bits: `continue_for[j]` says neighbor `j` needs a
    /// continued search (absent neighbors cannot send this clue).
    continue_for: Vec<bool>,
    /// Vertex of the clue in the receiver's trie (present iff any
    /// neighbor needs continuation).
    node: Option<clue_trie::NodeId>,
}

/// A clue table shared by `d` neighbors under one of the four strategies.
#[derive(Debug)]
pub struct MultiNeighborTable<A: Address> {
    strategy: Strategy,
    t2: BinaryTrie<A, ()>,
    neighbors: usize,
    /// Separate: one map per neighbor.
    per_neighbor: Vec<HashMap<Prefix<A>, MultiEntry<A>>>,
    /// Union / Bitmap: one shared map.
    shared: HashMap<Prefix<A>, MultiEntry<A>>,
    /// SubTables: the shared map holds uniform clues; these hold the rest.
    specific: Vec<HashMap<Prefix<A>, MultiEntry<A>>>,
}

impl<A: Address> MultiNeighborTable<A> {
    /// Builds the table for a receiver and the clue sets of its
    /// neighbors, all fully precomputed (Advance semantics).
    pub fn build(receiver: &[Prefix<A>], senders: &[Vec<Prefix<A>>], strategy: Strategy) -> Self {
        let t2: BinaryTrie<A, ()> = receiver.iter().map(|p| (*p, ())).collect();
        let d = senders.len();
        let sender_sets: Vec<HashSet<Prefix<A>>> =
            senders.iter().map(|v| v.iter().copied().collect()).collect();

        // Per (clue, neighbor) classification.
        let mut per_clue: HashMap<Prefix<A>, Vec<Option<Classification<A>>>> = HashMap::new();
        for (j, set) in sender_sets.iter().enumerate() {
            for clue in set {
                if clue.is_empty() {
                    continue;
                }
                let cls = classify(clue, &t2, &|p| set.contains(p));
                per_clue.entry(*clue).or_insert_with(|| vec![None; d])[j] = Some(cls);
            }
        }

        let make_entry = |clue: &Prefix<A>, cls: &[Option<Classification<A>>]| {
            let fd = cls.iter().flatten().next().map(|c| c.fd()).unwrap_or(None);
            let continue_for: Vec<bool> =
                cls.iter().map(|c| c.as_ref().is_some_and(|c| c.is_problematic())).collect();
            let node = if continue_for.iter().any(|&b| b) {
                t2.node_of_prefix(clue)
            } else {
                None
            };
            MultiEntry { fd, continue_for, node }
        };

        type Prepared<A> = Vec<(Prefix<A>, Vec<Option<Classification<A>>>, MultiEntry<A>)>;
        let prepared: Prepared<A> = per_clue
            .into_iter()
            .map(|(clue, cls)| {
                let entry = make_entry(&clue, &cls);
                (clue, cls, entry)
            })
            .collect();

        let mut table = MultiNeighborTable {
            strategy,
            neighbors: d,
            per_neighbor: vec![HashMap::new(); d],
            shared: HashMap::new(),
            specific: vec![HashMap::new(); d],
            t2,
        };

        for (clue, cls, entry) in &prepared {
            match strategy {
                Strategy::Separate => {
                    for (j, c) in cls.iter().enumerate() {
                        if c.is_some() {
                            table.per_neighbor[j].insert(*clue, entry.clone());
                        }
                    }
                }
                Strategy::Union => {
                    // One shared verdict: continue iff *any* sender of
                    // this clue needs it (Claim 1 must hold for all).
                    let any = entry.continue_for.iter().any(|&b| b);
                    let mut e = entry.clone();
                    e.continue_for = vec![any; d];
                    if !any {
                        e.node = None;
                    }
                    table.shared.insert(*clue, e);
                }
                Strategy::Bitmap => {
                    table.shared.insert(*clue, entry.clone());
                }
                Strategy::SubTables => {
                    // Uniform behaviour (same verdict for every sender of
                    // the clue) goes to the common table; the rest into
                    // each divergent neighbor's specific table.
                    let verdicts: Vec<bool> = cls
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.is_some())
                        .map(|(j, _)| entry.continue_for[j])
                        .collect();
                    let uniform = verdicts.windows(2).all(|w| w[0] == w[1]);
                    if uniform {
                        table.shared.insert(*clue, entry.clone());
                    } else {
                        for (j, c) in cls.iter().enumerate() {
                            if c.is_some() {
                                table.specific[j].insert(*clue, entry.clone());
                            }
                        }
                    }
                }
            }
        }
        table
    }

    /// Number of neighbors sharing this table.
    pub fn neighbors(&self) -> usize {
        self.neighbors
    }

    /// Looks up `dest` for a packet from `neighbor` carrying `clue`.
    /// Charges one hash probe per table consulted (two for a sub-table
    /// overflow), plus the continuation walk.
    pub fn lookup(
        &self,
        neighbor: usize,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> Option<Prefix<A>> {
        assert!(neighbor < self.neighbors, "neighbor index out of range");
        let Some(s) = clue else {
            return self.t2.lookup_counted(dest, cost).map(|r| self.t2.prefix(r));
        };
        let entry = match self.strategy {
            Strategy::Separate => {
                cost.hash_probe();
                self.per_neighbor[neighbor].get(&s)
            }
            Strategy::Union | Strategy::Bitmap => {
                cost.hash_probe();
                self.shared.get(&s)
            }
            Strategy::SubTables => {
                cost.hash_probe();
                match self.shared.get(&s) {
                    Some(e) => Some(e),
                    None => {
                        cost.hash_probe();
                        self.specific[neighbor].get(&s)
                    }
                }
            }
        };
        match entry {
            None => self.t2.lookup_counted(dest, cost).map(|r| self.t2.prefix(r)),
            Some(e) => {
                if e.continue_for.get(neighbor).copied().unwrap_or(false) {
                    let node = e.node.expect("continuation flagged without a vertex");
                    self.t2
                        .lookup_from(node, dest, cost)
                        .map(|r| self.t2.prefix(r))
                        .or(e.fd)
                } else {
                    e.fd
                }
            }
        }
    }

    /// Total entries across all constituent tables — the space the four
    /// strategies trade against lookup precision.
    pub fn entry_count(&self) -> usize {
        match self.strategy {
            Strategy::Separate => self.per_neighbor.iter().map(HashMap::len).sum(),
            Strategy::Union | Strategy::Bitmap => self.shared.len(),
            Strategy::SubTables => {
                self.shared.len() + self.specific.iter().map(HashMap::len).sum::<usize>()
            }
        }
    }

    /// Section 3.5-style size model: clue + FD per entry, a pointer for
    /// continuing entries, plus `d` bits per entry for the bitmap
    /// strategy.
    pub fn memory_bytes_model(&self) -> usize {
        let field = (A::BITS as usize) / 8;
        let entry_bytes = |e: &MultiEntry<A>| {
            2 * field
                + if e.node.is_some() { field } else { 0 }
                + match self.strategy {
                    Strategy::Bitmap => self.neighbors.div_ceil(8),
                    _ => 0,
                }
        };
        match self.strategy {
            Strategy::Separate => self
                .per_neighbor
                .iter()
                .flat_map(|m| m.values())
                .map(entry_bytes)
                .sum(),
            Strategy::Union | Strategy::Bitmap => self.shared.values().map(entry_bytes).sum(),
            Strategy::SubTables => {
                self.shared.values().map(entry_bytes).sum::<usize>()
                    + self
                        .specific
                        .iter()
                        .flat_map(|m| m.values())
                        .map(entry_bytes)
                        .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_lookup::reference_bmp;

    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn setup() -> (Vec<Prefix<Ip4>>, Vec<Vec<Prefix<Ip4>>>) {
        let receiver =
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.2.0.0/16"), p("20.0.0.0/8")];
        // Neighbor 0 knows the 10.1 refinement, neighbor 1 does not.
        let senders = vec![
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("20.0.0.0/8")],
            vec![p("10.0.0.0/8"), p("20.0.0.0/8")],
        ];
        (receiver, senders)
    }

    #[test]
    fn all_strategies_return_the_true_bmp() {
        let (receiver, senders) = setup();
        let dests: Vec<Ip4> = ["10.1.2.3", "10.2.9.9", "10.9.9.9", "20.1.1.1", "30.0.0.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        for strategy in Strategy::all() {
            let t = MultiNeighborTable::build(&receiver, &senders, strategy);
            for (j, sender) in senders.iter().enumerate() {
                for &dest in &dests {
                    let clue = reference_bmp(sender, dest).filter(|c| !c.is_empty());
                    let mut c = Cost::new();
                    let got = t.lookup(j, dest, clue, &mut c);
                    let want = reference_bmp(&receiver, dest);
                    assert_eq!(got, want, "{strategy} neighbor {j} dest {dest}");
                }
            }
        }
    }

    #[test]
    fn union_is_more_conservative_than_separate() {
        let (receiver, senders) = setup();
        let sep = MultiNeighborTable::build(&receiver, &senders, Strategy::Separate);
        let uni = MultiNeighborTable::build(&receiver, &senders, Strategy::Union);
        // Clue 10/8 from neighbor 0: with per-neighbor tables Claim 1
        // applies against neighbor 0 (which knows 10.1/16)… but 10.2/16
        // is a candidate for both, so both continue. The telling case is
        // a destination under 10.1 with the 10.1/16 clue: final either
        // way. Check access counts ordering on the 10/8 clue instead.
        let dest: Ip4 = "10.9.9.9".parse().unwrap();
        let (mut cs, mut cu) = (Cost::new(), Cost::new());
        let a = sep.lookup(0, dest, Some(p("10.0.0.0/8")), &mut cs);
        let b = uni.lookup(0, dest, Some(p("10.0.0.0/8")), &mut cu);
        assert_eq!(a, b);
        assert!(cu.total() >= cs.total());
        // And the union table is smaller.
        assert!(uni.entry_count() < sep.entry_count());
        assert!(uni.memory_bytes_model() < sep.memory_bytes_model());
    }

    #[test]
    fn bitmap_keeps_per_neighbor_precision_in_one_table() {
        let (receiver, senders) = setup();
        let bm = MultiNeighborTable::build(&receiver, &senders, Strategy::Bitmap);
        let uni = MultiNeighborTable::build(&receiver, &senders, Strategy::Union);
        assert_eq!(bm.entry_count(), uni.entry_count());
        // The 10.1/16 clue is final for neighbor 0 under bitmap.
        let dest: Ip4 = "10.1.2.3".parse().unwrap();
        let mut c = Cost::new();
        assert_eq!(bm.lookup(0, dest, Some(p("10.1.0.0/16")), &mut c), Some(p("10.1.0.0/16")));
        assert_eq!(c.total(), 1);
        // Bitmap entries cost a byte of bits more than union entries.
        assert!(bm.memory_bytes_model() >= uni.memory_bytes_model());
    }

    #[test]
    fn subtables_may_need_two_probes() {
        let (receiver, senders) = setup();
        let st = MultiNeighborTable::build(&receiver, &senders, Strategy::SubTables);
        // 20/8 behaves the same for both neighbors → common table, one
        // probe.
        let dest20: Ip4 = "20.1.1.1".parse().unwrap();
        let mut c = Cost::new();
        assert_eq!(st.lookup(1, dest20, Some(p("20.0.0.0/8")), &mut c), Some(p("20.0.0.0/8")));
        assert_eq!(c.hash_probes, 1);
    }

    #[test]
    fn no_clue_falls_back_to_full_lookup() {
        let (receiver, senders) = setup();
        let t = MultiNeighborTable::build(&receiver, &senders, Strategy::Union);
        let dest: Ip4 = "10.1.2.3".parse().unwrap();
        let mut c = Cost::new();
        assert_eq!(t.lookup(0, dest, None, &mut c), Some(p("10.1.0.0/16")));
        assert!(c.trie_nodes > 1);
    }

    #[test]
    #[should_panic(expected = "neighbor index out of range")]
    fn bad_neighbor_panics() {
        let (receiver, senders) = setup();
        let t = MultiNeighborTable::build(&receiver, &senders, Strategy::Union);
        let mut c = Cost::new();
        let _ = t.lookup(7, "10.0.0.1".parse().unwrap(), None, &mut c);
    }
}
