//! The [`CompiledBackend`] abstraction: one trait over every compiled
//! lookup path.
//!
//! The workspace has grown three read-only compilations of a
//! [`ClueEngine`] — the pointer-flattened [`FrozenEngine`], the
//! multibit [`crate::StrideEngine`] and the entropy-compressed
//! [`crate::CompressedEngine`] — and the serving runtime, the parallel
//! harness and the fleet simulator each want to run on *any* of them.
//! This trait captures the shared contract those consumers rely on:
//!
//! * compilation from a scalar engine (with a backend-specific config);
//! * the Cost-parity lookup in scalar, split (prepare/finish) and
//!   batched interleaved forms, plus the tag-resolving finish the
//!   runtime's precomputed hop tables consume;
//! * cheap [`CompiledBackend::replicate`] for per-core replicas;
//! * a layout self-description (arena/bucket/dictionary bytes and a
//!   per-level visit profile) feeding the [`CramReport`] cache model.
//!
//! Every implementation honors the same semantic baseline — identical
//! BMP, [`LookupClass`] and tick-identical [`Cost`] versus the scalar
//! engine — so backends are interchangeable *results-wise* and differ
//! only in bytes touched per lookup. The equivalence property tests
//! (`tests/*_prop.rs`) enforce this per backend; a future `planb`
//! backend slots in by implementing this trait.

use std::fmt;
use std::str::FromStr;

use clue_telemetry::LookupClass;
use clue_trie::{Address, Cost, Prefix};

use crate::compressed::{CompressedConfig, CompressedEngine};
use crate::cram::{CramLevel, CramReport};
use crate::engine::{ClueEngine, EngineStats, Method};
use crate::frozen::{Decision, FreezeError, FrozenEngine, FrozenNode};
use crate::stride::{PreparedLookup, StrideConfig, StrideEngine, StrideError};

/// Why a backend could not be compiled from a scalar engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The scalar engine's configuration cannot be frozen at all.
    Freeze(FreezeError),
    /// The frozen snapshot cannot be stride-expanded as configured.
    Stride(StrideError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Freeze(e) => write!(f, "freeze failed: {e}"),
            BackendError::Stride(e) => write!(f, "stride compilation failed: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<FreezeError> for BackendError {
    fn from(e: FreezeError) -> Self {
        BackendError::Freeze(e)
    }
}

impl From<StrideError> for BackendError {
    fn from(e: StrideError) -> Self {
        BackendError::Stride(e)
    }
}

/// The compiled backends a consumer can select by name (CLI `--backend`
/// flags, runtime configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The pointer-flattened BFS arena ([`FrozenEngine`]).
    Frozen,
    /// The multibit direct-indexed expansion ([`StrideEngine`]).
    Stride,
    /// The entropy-compressed bitmap arena ([`CompressedEngine`]).
    Compressed,
}

impl BackendKind {
    /// Every selectable backend, in presentation order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Frozen, BackendKind::Stride, BackendKind::Compressed];

    /// The canonical lowercase name (`frozen`, `stride`, `compressed`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Frozen => FrozenEngine::<clue_trie::Ip4>::NAME,
            BackendKind::Stride => StrideEngine::<clue_trie::Ip4>::NAME,
            BackendKind::Compressed => CompressedEngine::<clue_trie::Ip4>::NAME,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "frozen" => Ok(BackendKind::Frozen),
            "stride" => Ok(BackendKind::Stride),
            "compressed" => Ok(BackendKind::Compressed),
            other => Err(format!("unknown backend '{other}' (expected frozen|stride|compressed)")),
        }
    }
}

/// A compiled, read-only lookup engine; see the module docs. All
/// methods forward to the concrete engines' inherent implementations —
/// the trait adds no indirection on the hot path when used with a
/// concrete type or a monomorphized generic.
pub trait CompiledBackend<A: Address>: Clone + fmt::Debug + Send + Sync + Sized + 'static {
    /// The canonical lowercase backend name.
    const NAME: &'static str;

    /// Backend-specific compilation knobs.
    type Config: Clone + Default + Send + Sync;

    /// Compiles a scalar engine into this backend.
    fn compile(engine: &ClueEngine<A>, config: &Self::Config) -> Result<Self, BackendError>;

    /// The compiled method flavour.
    fn method(&self) -> Method;

    /// One lookup; Cost-parity with the scalar engine.
    fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass);

    /// As [`Self::lookup`], packaged as a [`Decision`].
    fn lookup_decision(&self, dest: A, clue: Option<Prefix<A>>) -> Decision<A> {
        let mut cost = Cost::new();
        let (bmp, class) = self.lookup(dest, clue, &mut cost);
        Decision { bmp, class, cost }
    }

    /// Decode-and-prefetch half of the split lookup.
    fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup;

    /// Resolves a prepared lookup to a dense route tag into
    /// [`Self::tag_prefixes`] ([`crate::NO_TAG`] for no match).
    fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass);

    /// The tag → prefix dictionary behind [`Self::lookup_finish_tag`].
    fn tag_prefixes(&self) -> &[Prefix<A>];

    /// Batched lookup in lockstep prefetch groups of `group` packets
    /// (a latency treatment only — decisions and stats are identical
    /// at every group size, including on backends that cannot
    /// prefetch and ignore it).
    fn lookup_batch_interleaved(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
    ) -> EngineStats;

    /// A telemetry-detached per-core replica sharing the compiled
    /// arenas (cheap — no deep copy).
    fn replicate(&self) -> Self;

    /// Total resident bytes of every compiled structure.
    fn memory_bytes(&self) -> usize;

    /// Bytes of the walk arena (what a clueless lookup traverses).
    fn arena_bytes(&self) -> u64;

    /// Bytes of the clue-probe structures.
    fn bucket_bytes(&self) -> u64;

    /// Bytes of the tag → prefix dictionary.
    fn dict_bytes(&self) -> u64;

    /// The walk arena as `(bytes, expected visits per uniform-random
    /// clueless lookup)` levels, hottest first — input to the CRAM
    /// cache-residency model.
    fn cram_levels(&self) -> Vec<CramLevel>;

    /// Runs the [`CramReport`] cache model over this layout.
    fn cram(&self) -> CramReport {
        CramReport::build(
            self.cram_levels(),
            self.arena_bytes(),
            self.bucket_bytes(),
            self.dict_bytes(),
        )
    }
}

/// Expected visits of a trie level `depth` holding `count` vertices,
/// under uniform random destinations: a walk reaches depth `d` with
/// probability (covered address space) `count / 2^d`.
fn trie_level_visits(depth: usize, count: u64) -> f64 {
    count as f64 / 2f64.powi(depth as i32)
}

impl<A: Address> CompiledBackend<A> for FrozenEngine<A> {
    const NAME: &'static str = "frozen";

    type Config = ();

    fn compile(engine: &ClueEngine<A>, _config: &Self::Config) -> Result<Self, BackendError> {
        Ok(engine.freeze()?)
    }

    fn method(&self) -> Method {
        FrozenEngine::method(self)
    }

    fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        FrozenEngine::lookup(self, dest, clue, cost)
    }

    fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup {
        FrozenEngine::lookup_prepare(self, dest, clue)
    }

    fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass) {
        FrozenEngine::lookup_finish_tag(self, op, dest, clue, cost)
    }

    fn tag_prefixes(&self) -> &[Prefix<A>] {
        FrozenEngine::tag_prefixes(self)
    }

    // The frozen batch has no prefetch pass (the hash map's home slot
    // is not address-computable), so the group size is irrelevant.
    fn lookup_batch_interleaved(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        _group: usize,
    ) -> EngineStats {
        FrozenEngine::lookup_batch(self, dests, clues, out)
    }

    fn replicate(&self) -> Self {
        FrozenEngine::replicate(self)
    }

    fn memory_bytes(&self) -> usize {
        FrozenEngine::memory_bytes(self)
    }

    fn arena_bytes(&self) -> u64 {
        (self.node_count() * core::mem::size_of::<FrozenNode>()) as u64
    }

    /// Entry payloads only; the `FxHashMap` index over them is heap
    /// storage the byte model cannot see per-level and is excluded
    /// here (it *is* counted in [`Self::memory_bytes`]).
    fn bucket_bytes(&self) -> u64 {
        core::mem::size_of_val(self.raw_entries()) as u64
    }

    fn dict_bytes(&self) -> u64 {
        core::mem::size_of_val(self.raw_routes()) as u64
    }

    fn cram_levels(&self) -> Vec<CramLevel> {
        self.level_node_counts()
            .iter()
            .enumerate()
            .map(|(d, &count)| CramLevel {
                bytes: count * core::mem::size_of::<FrozenNode>() as u64,
                visits: trie_level_visits(d, count),
            })
            .collect()
    }
}

impl<A: Address> CompiledBackend<A> for StrideEngine<A> {
    const NAME: &'static str = "stride";

    type Config = StrideConfig;

    fn compile(engine: &ClueEngine<A>, config: &Self::Config) -> Result<Self, BackendError> {
        Ok(engine.freeze()?.compile_stride(*config)?)
    }

    fn method(&self) -> Method {
        StrideEngine::method(self)
    }

    fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        StrideEngine::lookup(self, dest, clue, cost)
    }

    fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup {
        StrideEngine::lookup_prepare(self, dest, clue)
    }

    fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass) {
        StrideEngine::lookup_finish_tag(self, op, dest, clue, cost)
    }

    fn tag_prefixes(&self) -> &[Prefix<A>] {
        StrideEngine::tag_prefixes(self)
    }

    fn lookup_batch_interleaved(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
    ) -> EngineStats {
        StrideEngine::lookup_batch_interleaved(self, dests, clues, out, group)
    }

    fn replicate(&self) -> Self {
        StrideEngine::replicate(self)
    }

    fn memory_bytes(&self) -> usize {
        StrideEngine::memory_bytes(self)
    }

    fn arena_bytes(&self) -> u64 {
        StrideEngine::arena_bytes(self)
    }

    fn bucket_bytes(&self) -> u64 {
        StrideEngine::bucket_bytes(self)
    }

    fn dict_bytes(&self) -> u64 {
        StrideEngine::dict_bytes(self)
    }

    fn cram_levels(&self) -> Vec<CramLevel> {
        self.level_profile()
            .into_iter()
            .map(|(bytes, visits)| CramLevel { bytes, visits })
            .collect()
    }
}

impl<A: Address> CompiledBackend<A> for CompressedEngine<A> {
    const NAME: &'static str = "compressed";

    type Config = CompressedConfig;

    fn compile(engine: &ClueEngine<A>, config: &Self::Config) -> Result<Self, BackendError> {
        Ok(engine.freeze()?.compile_compressed(*config))
    }

    fn method(&self) -> Method {
        CompressedEngine::method(self)
    }

    fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        CompressedEngine::lookup(self, dest, clue, cost)
    }

    fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup {
        CompressedEngine::lookup_prepare(self, dest, clue)
    }

    fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass) {
        CompressedEngine::lookup_finish_tag(self, op, dest, clue, cost)
    }

    fn tag_prefixes(&self) -> &[Prefix<A>] {
        CompressedEngine::tag_prefixes(self)
    }

    fn lookup_batch_interleaved(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
    ) -> EngineStats {
        CompressedEngine::lookup_batch_interleaved(self, dests, clues, out, group)
    }

    fn replicate(&self) -> Self {
        CompressedEngine::replicate(self)
    }

    fn memory_bytes(&self) -> usize {
        CompressedEngine::memory_bytes(self)
    }

    fn arena_bytes(&self) -> u64 {
        CompressedEngine::arena_bytes(self)
    }

    fn bucket_bytes(&self) -> u64 {
        CompressedEngine::bucket_bytes(self)
    }

    fn dict_bytes(&self) -> u64 {
        CompressedEngine::dict_bytes(self)
    }

    // Per-level bytes prorate the whole arena (quads + rank
    // directories) by vertex share, so the levels partition exactly
    // what `arena_bytes` reports.
    fn cram_levels(&self) -> Vec<CramLevel> {
        let arena = CompiledBackend::<A>::arena_bytes(self) as f64;
        let total = self.node_count().max(1) as f64;
        self.level_node_counts()
            .iter()
            .enumerate()
            .map(|(d, &count)| CramLevel {
                bytes: (arena * count as f64 / total).round() as u64,
                visits: trie_level_visits(d, count),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::stride::NO_TAG;
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn engine() -> ClueEngine<Ip4> {
        let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
        let receiver = vec![
            p("10.0.0.0/8"),
            p("10.1.0.0/16"),
            p("10.1.2.0/24"),
            p("10.2.0.0/16"),
            p("192.168.0.0/16"),
        ];
        ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        )
    }

    fn exercise<E: CompiledBackend<Ip4>>(scalar: &ClueEngine<Ip4>) -> Vec<Decision<Ip4>> {
        let backend = E::compile(scalar, &E::Config::default()).unwrap();
        let cases: Vec<(Ip4, Option<Prefix<Ip4>>)> = vec![
            ("10.1.2.3".parse().unwrap(), None),
            ("10.1.2.3".parse().unwrap(), Some(p("10.1.0.0/16"))),
            ("192.168.3.4".parse().unwrap(), Some(p("192.168.0.0/16"))),
            ("10.1.2.3".parse().unwrap(), Some(p("192.168.0.0/16"))),
            ("10.1.2.3".parse().unwrap(), Some(p("10.1.2.0/24"))),
            ("11.1.2.3".parse().unwrap(), None),
        ];
        let mut decisions = Vec::new();
        for &(dest, clue) in &cases {
            let d = backend.lookup_decision(dest, clue);
            // The tagged path agrees with the value path.
            let mut cost = Cost::new();
            let op = backend.lookup_prepare(dest, clue);
            let (tag, class) = backend.lookup_finish_tag(op, dest, clue, &mut cost);
            let tag_bmp = (tag != NO_TAG).then(|| backend.tag_prefixes()[tag as usize]);
            assert_eq!(tag_bmp, d.bmp, "{} tag path for {dest} {clue:?}", E::NAME);
            assert_eq!(class, d.class, "{} tag class for {dest} {clue:?}", E::NAME);
            assert_eq!(cost, d.cost, "{} tag cost for {dest} {clue:?}", E::NAME);
            decisions.push(d);
        }
        // Batched form agrees with the scalar form.
        let dests: Vec<Ip4> = cases.iter().map(|c| c.0).collect();
        let clues: Vec<Option<Prefix<Ip4>>> = cases.iter().map(|c| c.1).collect();
        let mut out = vec![Decision::default(); cases.len()];
        backend.lookup_batch_interleaved(&dests, &clues, &mut out, 4);
        assert_eq!(out, decisions, "{} batch parity", E::NAME);
        // Layout self-description is coherent.
        assert!(backend.arena_bytes() > 0, "{}", E::NAME);
        assert!(
            backend.arena_bytes() + backend.bucket_bytes() + backend.dict_bytes()
                <= backend.memory_bytes() as u64,
            "{} byte split exceeds the resident total",
            E::NAME
        );
        let cram = backend.cram();
        assert!(cram.expected_refs >= 1.0, "{} every walk visits the root", E::NAME);
        assert!(cram.expected_l1_misses <= cram.expected_refs, "{}", E::NAME);
        assert!(cram.expected_l2_misses <= cram.expected_l1_misses, "{}", E::NAME);
        assert!(cram.expected_l3_misses <= cram.expected_l2_misses, "{}", E::NAME);
        // A table this small is fully L2-resident (the stride root
        // array alone overflows L1 by design — 8192 direct-indexed
        // slots at the default 13 initial bits).
        assert_eq!(cram.expected_l2_misses, 0.0, "{}", E::NAME);
        let replica = backend.replicate();
        assert_eq!(
            replica.lookup_decision(dests[0], clues[0]),
            decisions[0],
            "{} replica parity",
            E::NAME
        );
        decisions
    }

    #[test]
    fn all_backends_agree_with_each_other() {
        let scalar = engine();
        let frozen = exercise::<FrozenEngine<Ip4>>(&scalar);
        let stride = exercise::<StrideEngine<Ip4>>(&scalar);
        let compressed = exercise::<CompressedEngine<Ip4>>(&scalar);
        assert_eq!(frozen, stride);
        assert_eq!(frozen, compressed);
    }

    #[test]
    fn compressed_arena_is_the_smallest() {
        let scalar = engine();
        let frozen = FrozenEngine::compile(&scalar, &()).unwrap();
        let stride = StrideEngine::compile(&scalar, &StrideConfig::default()).unwrap();
        let compressed = CompressedEngine::compile(&scalar, &CompressedConfig).unwrap();
        let fa = CompiledBackend::<Ip4>::arena_bytes(&frozen);
        let sa = CompiledBackend::<Ip4>::arena_bytes(&stride);
        let ca = CompiledBackend::<Ip4>::arena_bytes(&compressed);
        assert!(ca * 3 < fa, "compressed {ca} vs frozen {fa}");
        assert!(ca < sa, "compressed {ca} vs stride {sa}");
    }

    #[test]
    fn kinds_round_trip_through_names() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>(), Ok(kind));
        }
        assert!("planb".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Compressed.to_string(), "compressed");
    }
}
