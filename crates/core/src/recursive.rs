//! BGP over OSPF: the double table walk of Section 5.2.
//!
//! A border router often resolves a packet in two steps: the **BGP**
//! table maps the destination to a *next-hop router address* (no
//! interface attached), and the **IGP** (OSPF) table maps that next-hop
//! address to the actual outgoing interface — “the router goes twice
//! through its forwarding table”.
//!
//! The paper's point: the clue scheme still applies. The clue placed on
//! the packet is the *first* BMP (the BGP-level one), because that is
//! what the downstream router starts from; “in some cases it might be
//! beneficial to place both BMPs on the packet”, which
//! [`RecursiveLookup::lookup_with_clues`] supports — the second clue
//! accelerates the IGP resolution of the (shared) next-hop address.

use clue_trie::{Address, BinaryTrie, Cost, Prefix};

use crate::engine::{ClueEngine, EngineConfig};

/// The outcome of a two-stage resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursiveResult<A: Address> {
    /// The BGP-level best matching prefix of the destination.
    pub bgp_bmp: Prefix<A>,
    /// The BGP next-hop router address.
    pub next_hop: A,
    /// The IGP-level best matching prefix of the next-hop address.
    pub igp_bmp: Prefix<A>,
    /// The outgoing interface resolved through the IGP.
    pub interface: u32,
}

/// A two-table router: BGP prefixes resolving to next-hop addresses,
/// IGP prefixes resolving to interfaces, with clue engines for both
/// stages.
#[derive(Debug)]
pub struct RecursiveLookup<A: Address> {
    bgp: BinaryTrie<A, A>,
    igp: BinaryTrie<A, u32>,
    bgp_engine: ClueEngine<A>,
    igp_engine: ClueEngine<A>,
}

impl<A: Address> RecursiveLookup<A> {
    /// Builds the router.
    ///
    /// * `bgp` — destination prefixes and their next-hop router address;
    /// * `igp` — internal prefixes and their interface;
    /// * `upstream_bgp` / `upstream_igp` — the clue-sending neighbor's
    ///   prefix sets (for the Claim 1 precomputation);
    /// * `config` — family/method shared by both stages.
    pub fn new(
        bgp: Vec<(Prefix<A>, A)>,
        igp: Vec<(Prefix<A>, u32)>,
        upstream_bgp: &[Prefix<A>],
        upstream_igp: &[Prefix<A>],
        config: EngineConfig,
    ) -> Self {
        let bgp_prefixes: Vec<Prefix<A>> = bgp.iter().map(|(p, _)| *p).collect();
        let igp_prefixes: Vec<Prefix<A>> = igp.iter().map(|(p, _)| *p).collect();
        RecursiveLookup {
            bgp: bgp.into_iter().collect(),
            igp: igp.into_iter().collect(),
            bgp_engine: ClueEngine::precomputed(upstream_bgp, &bgp_prefixes, config),
            igp_engine: ClueEngine::precomputed(upstream_igp, &igp_prefixes, config),
        }
    }

    /// The clue-less double lookup: BGP walk on the destination, then an
    /// IGP walk on the next-hop address. Both stages are counted.
    pub fn lookup(&self, dest: A, cost: &mut Cost) -> Option<RecursiveResult<A>> {
        let bgp_bmp = self.bgp_engine.common_lookup(dest, cost)?;
        let next_hop = *self.bgp.value(self.bgp.get(&bgp_bmp)?);
        let igp_bmp = self.igp_engine.common_lookup(next_hop, cost)?;
        let interface = *self.igp.value(self.igp.get(&igp_bmp)?);
        Some(RecursiveResult { bgp_bmp, next_hop, igp_bmp, interface })
    }

    /// The clue-assisted double lookup of Section 5.2: `clue1` is the
    /// upstream router's BGP-level BMP (the clue the paper places on the
    /// packet); `clue2`, if present, is its IGP-level BMP for the shared
    /// next-hop address (“place both BMPs on the packet”).
    pub fn lookup_with_clues(
        &mut self,
        dest: A,
        clue1: Option<Prefix<A>>,
        clue2: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> Option<RecursiveResult<A>> {
        let bgp_bmp = self.bgp_engine.lookup(dest, clue1, None, cost)?;
        let next_hop = *self.bgp.value(self.bgp.get(&bgp_bmp)?);
        // The second clue applies only if it is a prefix of *our*
        // next-hop address — the engine's malformed-clue fallback handles
        // the mismatch case for free.
        let igp_bmp = self.igp_engine.lookup(next_hop, clue2, None, cost)?;
        let interface = *self.igp.value(self.igp.get(&igp_bmp)?);
        Some(RecursiveResult { bgp_bmp, next_hop, igp_bmp, interface })
    }

    /// The clues this router would stamp after resolving: the BGP BMP
    /// (always) and the IGP BMP (the optional second clue).
    pub fn clues_for(&self, result: &RecursiveResult<A>) -> (Prefix<A>, Prefix<A>) {
        (result.bgp_bmp, result.igp_bmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Method;
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    /// An AS border: destinations beyond resolve to one of two egress
    /// routers, which the OSPF table maps to interfaces.
    fn router() -> RecursiveLookup<Ip4> {
        let bgp = vec![
            (p("20.0.0.0/8"), a("192.168.0.1")),
            (p("20.5.0.0/16"), a("192.168.0.2")),
            (p("30.0.0.0/8"), a("192.168.0.2")),
        ];
        let igp = vec![
            (p("192.168.0.0/30"), 1u32), // egress 1 via port 1
            (p("192.168.0.2/31"), 2u32), // egress 2 via port 2
        ];
        let up_bgp: Vec<Prefix<Ip4>> = bgp.iter().map(|(q, _)| *q).collect();
        let up_igp: Vec<Prefix<Ip4>> = igp.iter().map(|(q, _)| *q).collect();
        RecursiveLookup::new(
            bgp,
            igp,
            &up_bgp,
            &up_igp,
            EngineConfig::new(Family::Patricia, Method::Advance),
        )
    }

    #[test]
    fn double_lookup_resolves_interface() {
        let r = router();
        let mut c = Cost::new();
        let res = r.lookup(a("20.1.2.3"), &mut c).unwrap();
        assert_eq!(res.bgp_bmp, p("20.0.0.0/8"));
        assert_eq!(res.next_hop, a("192.168.0.1"));
        assert_eq!(res.interface, 1);
        // Two full walks were paid.
        assert!(c.total() >= 4, "expected two counted stages, got {c}");

        let res2 = r.lookup(a("20.5.9.9"), &mut Cost::new()).unwrap();
        assert_eq!(res2.next_hop, a("192.168.0.2"));
        assert_eq!(res2.interface, 2);
    }

    #[test]
    fn first_clue_accelerates_bgp_stage() {
        let mut r = router();
        let dest = a("30.1.2.3");
        let mut clue_less = Cost::new();
        let want = r.lookup(dest, &mut clue_less).unwrap();
        let mut clued = Cost::new();
        let got = r.lookup_with_clues(dest, Some(p("30.0.0.0/8")), None, &mut clued).unwrap();
        assert_eq!(got, want);
        assert!(clued.total() < clue_less.total(), "{} !< {}", clued.total(), clue_less.total());
    }

    #[test]
    fn both_clues_reach_two_accesses() {
        let mut r = router();
        let dest = a("30.1.2.3");
        let want = r.lookup(dest, &mut Cost::new()).unwrap();
        let (c1, c2) = r.clues_for(&want);
        let mut cost = Cost::new();
        let got = r.lookup_with_clues(dest, Some(c1), Some(c2), &mut cost).unwrap();
        assert_eq!(got, want);
        // One clue-table access per stage — the Section 5.2 optimum.
        assert_eq!(cost.total(), 2, "{cost}");
    }

    #[test]
    fn mismatched_second_clue_is_harmless() {
        let mut r = router();
        let dest = a("20.1.2.3"); // next hop .1, but the clue points at .2's prefix
        let want = r.lookup(dest, &mut Cost::new()).unwrap();
        let got = r
            .lookup_with_clues(dest, Some(p("20.0.0.0/8")), Some(p("192.168.0.2/31")), &mut Cost::new())
            .unwrap();
        assert_eq!(got, want, "a wrong second clue must not corrupt the result");
    }

    #[test]
    fn unroutable_destination_is_none() {
        let r = router();
        assert!(r.lookup(a("99.0.0.1"), &mut Cost::new()).is_none());
    }
}
