//! The clue itself: what a router piggybacks on a forwarded packet.
//!
//! The clue is the best matching prefix the upstream router found for the
//! packet's destination. Because that prefix is *by definition* a prefix
//! of the destination address already present in the header, it is encoded
//! as nothing but a length: 5 bits suffice for IPv4 (lengths `1..=32`
//! encoded as `len − 1`), 7 bits for IPv6 (Section 3 of the paper).
//!
//! With the **indexing technique** (Section 3.3.1) the sender additionally
//! stamps a 16-bit per-neighbor index, letting the receiver skip the hash
//! function at the price of header space.

use core::fmt;

use clue_trie::{Address, Prefix};

/// The wire form of a clue: `W = 5` (IPv4) or `7` (IPv6) bits carrying
/// `prefix_len - 1`.
///
/// A zero-length clue (the upstream router matched nothing, or does not
/// participate) is represented by *absence* — [`ClueHeader::none`] — since
/// a clue that carries no information is simply not attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedClue(u8);

impl EncodedClue {
    /// Encodes a best-matching-prefix as a clue.
    ///
    /// Returns `None` for the empty prefix: a zero-length BMP (default
    /// route) tells the next router nothing, so no clue is attached.
    pub fn encode<A: Address>(bmp: &Prefix<A>) -> Option<Self> {
        if bmp.is_empty() {
            None
        } else {
            Some(EncodedClue(bmp.len() - 1))
        }
    }

    /// Decodes against the destination address found in the same header.
    pub fn decode<A: Address>(self, destination: A) -> Prefix<A> {
        Prefix::of_address(destination, self.prefix_len::<A>())
    }

    /// The prefix length this clue denotes.
    pub fn prefix_len<A: Address>(self) -> u8 {
        debug_assert!(self.0 < A::BITS, "encoded clue out of range for this family");
        self.0 + 1
    }

    /// The raw on-the-wire value (`prefix_len - 1`).
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Builds from a raw wire value, validating the range for family `A`.
    pub fn from_raw<A: Address>(raw: u8) -> Option<Self> {
        if raw < A::BITS {
            Some(EncodedClue(raw))
        } else {
            None
        }
    }
}

/// The clue-related fields a participating router writes into the packet
/// header: the encoded clue, plus (with the indexing technique) the 16-bit
/// per-neighbor clue index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClueHeader {
    /// The encoded clue, if the sender attached one.
    pub clue: Option<EncodedClue>,
    /// The sender-assigned sequential index of this clue (Section 3.3.1's
    /// indexing technique); `None` when the hash-table technique is used.
    pub index: Option<u16>,
}

impl ClueHeader {
    /// A header with no clue (non-participating sender, Section 5.3).
    pub fn none() -> Self {
        ClueHeader::default()
    }

    /// A header carrying the given BMP as a clue (hash-table technique).
    pub fn with_clue<A: Address>(bmp: &Prefix<A>) -> Self {
        ClueHeader { clue: EncodedClue::encode(bmp), index: None }
    }

    /// A header carrying the BMP plus its sender-assigned index
    /// (indexing technique).
    pub fn with_indexed_clue<A: Address>(bmp: &Prefix<A>, index: u16) -> Self {
        ClueHeader { clue: EncodedClue::encode(bmp), index: Some(index) }
    }

    /// Decodes the clue against the destination, if one is attached.
    pub fn decode<A: Address>(&self, destination: A) -> Option<Prefix<A>> {
        self.clue.map(|c| c.decode(destination))
    }

    /// Header bits consumed by this scheme for family `A`: the paper's
    /// 5 (IPv4) / 7 (IPv6), plus 16 with the indexing technique.
    pub fn bits_on_wire<A: Address>(&self) -> u8 {
        A::CLUE_BITS + if self.index.is_some() { 16 } else { 0 }
    }

    /// Truncates the clue to at most `max_len` bits — the privacy measure
    /// of Section 5.3 (“a router may truncate some clues; truncated clues
    /// are also beneficial”). A clue truncated to zero disappears.
    pub fn truncated<A: Address>(&self, destination: A, max_len: u8) -> Self {
        match self.decode(destination) {
            Some(p) if p.len() > max_len => {
                ClueHeader { clue: EncodedClue::encode(&p.truncate(max_len)), index: None }
            }
            _ => *self,
        }
    }
}

impl fmt::Display for ClueHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.clue, self.index) {
            (None, _) => write!(f, "no-clue"),
            (Some(c), None) => write!(f, "clue(len={})", c.raw() + 1),
            (Some(c), Some(i)) => write!(f, "clue(len={}, idx={})", c.raw() + 1, i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::{Ip4, Ip6};

    fn p4(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dest: Ip4 = "192.168.77.3".parse().unwrap();
        for len in 1..=32u8 {
            let bmp = Prefix::of_address(dest, len);
            let enc = EncodedClue::encode(&bmp).unwrap();
            assert_eq!(enc.decode(dest), bmp, "len {len}");
            assert_eq!(enc.prefix_len::<Ip4>(), len);
        }
    }

    #[test]
    fn empty_prefix_is_no_clue() {
        assert_eq!(EncodedClue::encode(&Prefix::<Ip4>::ROOT), None);
        assert_eq!(ClueHeader::with_clue(&Prefix::<Ip4>::ROOT), ClueHeader::none());
    }

    #[test]
    fn raw_range_validation() {
        assert!(EncodedClue::from_raw::<Ip4>(31).is_some());
        assert!(EncodedClue::from_raw::<Ip4>(32).is_none());
        assert!(EncodedClue::from_raw::<Ip6>(127).is_some());
        assert!(EncodedClue::from_raw::<Ip6>(128).is_none());
    }

    #[test]
    fn clue_fits_in_5_bits_for_ipv4() {
        // Every IPv4 clue must fit the paper's 5-bit budget.
        for len in 1..=32u8 {
            let bmp = Prefix::new(Ip4(0), len);
            let raw = EncodedClue::encode(&bmp).unwrap().raw();
            assert!(raw < 32, "raw {raw} does not fit 5 bits");
        }
        assert_eq!(Ip4::CLUE_BITS, 5);
        assert_eq!(Ip6::CLUE_BITS, 7);
    }

    #[test]
    fn header_bits_on_wire() {
        let h = ClueHeader::with_clue(&p4("10.0.0.0/8"));
        assert_eq!(h.bits_on_wire::<Ip4>(), 5);
        let hi = ClueHeader::with_indexed_clue(&p4("10.0.0.0/8"), 7);
        assert_eq!(hi.bits_on_wire::<Ip4>(), 21);
    }

    #[test]
    fn decode_against_destination() {
        let dest: Ip4 = "10.1.2.3".parse().unwrap();
        let h = ClueHeader::with_clue(&p4("10.1.0.0/16"));
        assert_eq!(h.decode(dest), Some(p4("10.1.0.0/16")));
        assert_eq!(ClueHeader::none().decode(dest), None);
    }

    #[test]
    fn truncation_shortens_and_drops_index() {
        let dest: Ip4 = "10.1.2.3".parse().unwrap();
        let h = ClueHeader::with_indexed_clue(&p4("10.1.2.0/24"), 3);
        let t = h.truncated(dest, 16);
        assert_eq!(t.decode(dest), Some(p4("10.1.0.0/16")));
        assert_eq!(t.index, None);
        // Already short enough: untouched.
        let same = h.truncated(dest, 24);
        assert_eq!(same, h);
    }

    #[test]
    fn display_formats() {
        let dest = p4("10.1.0.0/16");
        assert_eq!(ClueHeader::with_clue(&dest).to_string(), "clue(len=16)");
        assert_eq!(ClueHeader::none().to_string(), "no-clue");
    }
}
