//! CRAM-style cache-residency analysis of a compiled lookup arena.
//!
//! The compression literature (Degermark et al. SIGCOMM 1997, Rétvári
//! et al. SIGCOMM 2013) evaluates FIB encodings not by wall-clock alone
//! but by an analytic *cache residency* model: given the per-level byte
//! footprint of the walk structure and the expected number of visits
//! per level per lookup, how many of those references fall outside
//! each cache level? Small arenas win because their hot upper levels —
//! visited by every packet — fit in L1/L2 and the misses concentrate
//! in the rarely-reached leaves.
//!
//! [`CramReport::build`] implements the standard greedy top-down
//! residency assumption: levels are cached in walk order (level 0
//! first) until the cache is full, which matches the access-frequency
//! ordering of a root-down trie walk (level *d* is visited at most as
//! often as level *d − 1*). For a level straddling a cache boundary,
//! the resident fraction is prorated by bytes. The model is
//! deterministic — pure arithmetic over the compiled layout — so its
//! numbers are stable across runs and machines and can sit behind the
//! benchmark regression gate, unlike wall-clock throughput.

/// One walk level of a compiled arena: how big it is and how often a
/// lookup touches it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CramLevel {
    /// Resident bytes of this level's share of the walk structure.
    pub bytes: u64,
    /// Expected visits per lookup (level 0 is visited by every walk,
    /// deeper levels by the fraction of walks that reach them).
    pub visits: f64,
}

/// Bytes of a typical per-core L1 data cache.
pub const L1_BYTES: u64 = 32 * 1024;
/// Bytes of a typical per-core L2 cache.
pub const L2_BYTES: u64 = 1024 * 1024;
/// Bytes of a typical shared L3 slice available to one core.
pub const L3_BYTES: u64 = 32 * 1024 * 1024;

/// The CRAM analysis of one compiled backend: layout byte totals plus
/// modelled per-lookup miss counts at each cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CramReport {
    /// The per-level byte/visit map the model consumed.
    pub levels: Vec<CramLevel>,
    /// Bytes of the walk arena (what the levels partition).
    pub arena_bytes: u64,
    /// Bytes of the clue-bucket structures.
    pub bucket_bytes: u64,
    /// Bytes of the tag → prefix dictionary (control plane).
    pub dict_bytes: u64,
    /// Expected walk references per lookup (sum of level visits).
    pub expected_refs: f64,
    /// Expected walk references per lookup falling outside L1.
    pub expected_l1_misses: f64,
    /// Expected walk references per lookup falling outside L2.
    pub expected_l2_misses: f64,
    /// Expected walk references per lookup falling outside L3.
    pub expected_l3_misses: f64,
}

/// The fraction of a `[start, end)` byte span lying beyond `cap`.
fn beyond(start: u64, end: u64, cap: u64) -> f64 {
    if end <= cap {
        0.0
    } else if start >= cap {
        1.0
    } else {
        (end - cap) as f64 / (end - start) as f64
    }
}

impl CramReport {
    /// Runs the greedy residency model over a per-level layout. The
    /// `levels` must be in walk order (hottest first); byte totals for
    /// the non-walk structures are carried through for reporting.
    pub fn build(
        levels: Vec<CramLevel>,
        arena_bytes: u64,
        bucket_bytes: u64,
        dict_bytes: u64,
    ) -> CramReport {
        let mut start = 0u64;
        let mut expected_refs = 0.0;
        let mut misses = [0.0f64; 3];
        for level in &levels {
            let end = start + level.bytes;
            expected_refs += level.visits;
            for (m, cap) in misses.iter_mut().zip([L1_BYTES, L2_BYTES, L3_BYTES]) {
                *m += level.visits * beyond(start, end, cap);
            }
            start = end;
        }
        CramReport {
            levels,
            arena_bytes,
            bucket_bytes,
            dict_bytes,
            expected_refs,
            expected_l1_misses: misses[0],
            expected_l2_misses: misses[1],
            expected_l3_misses: misses[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_resident_arena_never_misses() {
        let r = CramReport::build(
            vec![
                CramLevel { bytes: 1024, visits: 1.0 },
                CramLevel { bytes: 2048, visits: 0.5 },
            ],
            3072,
            100,
            50,
        );
        assert_eq!(r.expected_refs, 1.5);
        assert_eq!(r.expected_l1_misses, 0.0);
        assert_eq!(r.expected_l2_misses, 0.0);
        assert_eq!(r.expected_l3_misses, 0.0);
        assert_eq!(r.arena_bytes, 3072);
    }

    #[test]
    fn straddling_levels_prorate_by_bytes() {
        // Level 0 fills L1 exactly; level 1 is half in, half out.
        let r = CramReport::build(
            vec![
                CramLevel { bytes: L1_BYTES, visits: 1.0 },
                CramLevel { bytes: 2 * L1_BYTES, visits: 0.8 },
            ],
            3 * L1_BYTES,
            0,
            0,
        );
        assert!((r.expected_l1_misses - 0.8).abs() < 1e-12, "{}", r.expected_l1_misses);
        assert_eq!(r.expected_l2_misses, 0.0);
    }

    #[test]
    fn arena_beyond_l3_misses_everywhere() {
        let r = CramReport::build(
            vec![
                CramLevel { bytes: L3_BYTES, visits: 1.0 },
                CramLevel { bytes: L3_BYTES, visits: 1.0 },
            ],
            2 * L3_BYTES,
            0,
            0,
        );
        // Level 1 sits wholly beyond L3; level 0 fits L3 exactly but
        // overflows L1/L2 almost entirely.
        assert_eq!(r.expected_l3_misses, 1.0);
        assert!(r.expected_l1_misses > 1.9);
        assert!(r.expected_l2_misses > 1.9);
        assert!(r.expected_l1_misses >= r.expected_l2_misses);
        assert!(r.expected_l2_misses >= r.expected_l3_misses);
    }
}
