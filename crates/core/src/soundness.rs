//! The machine-checked soundness invariant behind the paper's
//! robustness claim.
//!
//! Section 3 argues that clues are *hints*: a valid clue lets the
//! receiver resume the lookup where the sender stopped, and a wrong,
//! stale, corrupted or adversarial clue can only make the lookup
//! **slower** — it must never change the best-matching prefix. This
//! module turns that sentence into a checkable contract:
//!
//! > For every destination `d` and *any* clue value `c` (including
//! > `None`), `ClueEngine::lookup(d, c)` and
//! > `FrozenEngine::lookup(d, c)` return exactly the BMP of `d` in the
//! > receiver's table — the same answer a clue-less lookup returns.
//!
//! The invariant is **unconditional** for `Method::Common` and
//! `Method::Simple`: their clue-table entries assume nothing about
//! the sender, and every prefix of `d` longer than the clue is still
//! reachable from the continuation vertex. `Method::Advance` is
//! sharper: its Claim-1 pruning takes the clue to be the sender's
//! *current* BMP, so it is sound exactly for clues drawn from the
//! sender table it was precomputed against (the epoch-consistency the
//! churn driver maintains by construction). A clue from a skewed
//! epoch that still contains `d` can silently validate a pruned
//! `Covered` entry — the `advance_trusts_the_clue_epoch` test pins
//! this trust boundary, and the chaos harness therefore serves
//! fault-injected traffic with the Simple method.
//!
//! [`check_soundness`] runs both the mutable scalar engine and its
//! frozen compilation differentially against the clue-less baseline,
//! recording every divergence and the *cost overhead* each clue
//! charged relative to the baseline (a sound fault wastes at most a
//! clue-table probe plus the fallback walk). It also pins the
//! **exactly-once accounting** contract: the scalar stats delta and
//! the frozen batch stats must classify every packet once, in the same
//! class — malformed clues included.
//!
//! The chaos harness (`clue_netsim::run_chaos`) drives this checker
//! with fault-injected traffic; `crates/core/tests/soundness_prop.rs`
//! drives it with property-generated tables and adversarial clues.

use clue_trie::{Address, Cost, Prefix};

use crate::engine::{ClueEngine, EngineStats};
use crate::frozen::FrozenEngine;

/// One forwarding decision that differed from the clue-less baseline.
/// Any instance is a soundness bug in the engine, not a degradation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence<A: Address> {
    /// Which pipeline diverged: `"scalar"` or `"frozen"`.
    pub path: &'static str,
    /// The destination looked up.
    pub dest: A,
    /// The clue the lookup carried.
    pub clue: Option<Prefix<A>>,
    /// What the clued lookup answered.
    pub got: Option<Prefix<A>>,
    /// The clue-less baseline (the true BMP).
    pub want: Option<Prefix<A>>,
}

/// What a differential soundness run observed.
#[derive(Debug, Clone)]
pub struct SoundnessReport<A: Address> {
    /// Destinations checked (each through both pipelines).
    pub checked: u64,
    /// Total divergences observed across both pipelines.
    pub divergence_count: u64,
    /// The first few divergences, retained for diagnostics (capped at
    /// [`SoundnessReport::RETAINED`]).
    pub divergences: Vec<Divergence<A>>,
    /// Extra memory references the clued lookups paid versus the
    /// clue-less baseline, summed (frozen pipeline; clamped at 0 per
    /// packet — clues that *help* don't offset clues that hurt).
    pub overhead_total: u64,
    /// Worst single-packet overhead.
    pub overhead_max: u64,
    /// Per-packet overheads, one entry per checked destination, in
    /// input order — percentile material for the chaos report.
    pub overheads: Vec<u64>,
    /// Scalar-engine stats delta for the run (exactly one class per
    /// packet).
    pub scalar_stats: EngineStats,
    /// Frozen-batch stats for the run (exactly one class per packet).
    pub frozen_stats: EngineStats,
}

impl<A: Address> Default for SoundnessReport<A> {
    fn default() -> Self {
        SoundnessReport {
            checked: 0,
            divergence_count: 0,
            divergences: Vec::new(),
            overhead_total: 0,
            overhead_max: 0,
            overheads: Vec::new(),
            scalar_stats: EngineStats::default(),
            frozen_stats: EngineStats::default(),
        }
    }
}

impl<A: Address> SoundnessReport<A> {
    /// How many divergences are retained verbatim.
    pub const RETAINED: usize = 8;

    /// No divergence on either pipeline.
    pub fn is_sound(&self) -> bool {
        self.divergence_count == 0
    }

    /// Scalar and frozen classified every packet identically, and each
    /// packet was counted exactly once.
    pub fn stats_parity(&self) -> bool {
        self.scalar_stats == self.frozen_stats && self.scalar_stats.total() == self.checked
    }
}

/// Differentially checks the soundness invariant over `dests[i]` /
/// `clues[i]` pairs: both the mutable `engine` and its `frozen`
/// compilation must answer exactly like the clue-less baseline
/// ([`ClueEngine::reference_lookup`]), whatever the clue.
///
/// The scalar engine's stat counters advance as a side effect (that is
/// the point — the delta is how exactly-once accounting is pinned);
/// cache or learning state would too, so callers wanting a clean
/// differential pass a precomputed, cache-less engine, which is also
/// the only kind that freezes.
///
/// # Panics
/// Panics if `dests` and `clues` have different lengths.
pub fn check_soundness<A: Address>(
    engine: &mut ClueEngine<A>,
    frozen: &FrozenEngine<A>,
    dests: &[A],
    clues: &[Option<Prefix<A>>],
) -> SoundnessReport<A> {
    assert_eq!(dests.len(), clues.len(), "one clue slot per destination");
    let mut report = SoundnessReport::default();
    report.overheads.reserve(dests.len());
    let stats_before = engine.stats();

    let mut frozen_stats = EngineStats::default();
    for (&dest, &clue) in dests.iter().zip(clues) {
        let want = engine.reference_lookup(dest);

        let mut scalar_cost = Cost::new();
        let got_scalar = engine.lookup(dest, clue, None, &mut scalar_cost);
        if got_scalar != want {
            record(&mut report, "scalar", dest, clue, got_scalar, want);
        }

        let mut baseline_cost = Cost::new();
        let (got_baseline, _) = frozen.lookup(dest, None, &mut baseline_cost);
        if got_baseline != want && clue.is_some() {
            // The frozen clue-less walk should BE the baseline; it can
            // only differ when `frozen` is not the compilation of
            // `engine` — a divergence in its own right. (With no clue
            // the clued comparison below covers the same lookup.)
            record(&mut report, "frozen", dest, None, got_baseline, want);
        }

        let mut clued_cost = Cost::new();
        let (got_frozen, class) = frozen.lookup(dest, clue, &mut clued_cost);
        bump(&mut frozen_stats, class);
        if got_frozen != want {
            record(&mut report, "frozen", dest, clue, got_frozen, want);
        }

        let overhead = clued_cost.total().saturating_sub(baseline_cost.total());
        report.overhead_total += overhead;
        report.overhead_max = report.overhead_max.max(overhead);
        report.overheads.push(overhead);
        report.checked += 1;
    }

    let after = engine.stats();
    report.scalar_stats = EngineStats {
        clueless: after.clueless - stats_before.clueless,
        finals: after.finals - stats_before.finals,
        continued: after.continued - stats_before.continued,
        misses: after.misses - stats_before.misses,
        malformed: after.malformed - stats_before.malformed,
    };
    report.frozen_stats = frozen_stats;
    report
}

fn record<A: Address>(
    report: &mut SoundnessReport<A>,
    path: &'static str,
    dest: A,
    clue: Option<Prefix<A>>,
    got: Option<Prefix<A>>,
    want: Option<Prefix<A>>,
) {
    report.divergence_count += 1;
    if report.divergences.len() < SoundnessReport::<A>::RETAINED {
        report.divergences.push(Divergence { path, dest, clue, got, want });
    }
}

fn bump(stats: &mut EngineStats, class: clue_telemetry::LookupClass) {
    use clue_telemetry::LookupClass;
    match class {
        LookupClass::Clueless => stats.clueless += 1,
        LookupClass::Final => stats.finals += 1,
        LookupClass::Continued => stats.continued += 1,
        LookupClass::Miss => stats.misses += 1,
        LookupClass::Malformed => stats.malformed += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Method};
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    fn pair() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
        let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
        let receiver =
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24"), p("172.16.0.0/12")];
        (sender, receiver)
    }

    #[test]
    fn every_clue_shape_is_sound_with_parity() {
        let (sender, receiver) = pair();
        let mut engine = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Simple),
        );
        let frozen = engine.freeze().unwrap();
        let dests = vec![
            a("10.1.2.3"),
            a("10.1.2.3"),
            a("10.1.2.3"),
            a("10.9.9.9"),
            a("8.8.8.8"),
            a("10.1.2.3"),
        ];
        let clues = vec![
            None,                      // clueless
            Some(p("10.1.0.0/16")),    // valid, known
            Some(p("192.168.0.0/16")), // adversarial: not a prefix of dest
            Some(p("10.9.0.0/16")),    // contains dest but unknown here: miss
            Some(p("10.0.0.0/8")),     // stale: dest moved out from under it
            Some(p("10.0.0.0/8")),     // skewed but containing: under-long clue
        ];
        let report = check_soundness(&mut engine, &frozen, &dests, &clues);
        assert!(report.is_sound(), "divergences: {:?}", report.divergences);
        assert!(report.stats_parity(), "{:?} vs {:?}", report.scalar_stats, report.frozen_stats);
        assert_eq!(report.checked, 6);
        assert_eq!(report.scalar_stats.clueless, 1);
        assert_eq!(report.scalar_stats.malformed, 2, "non-prefix clues, one count each");
        assert_eq!(report.overheads.len(), 6);
        assert!(report.overhead_max >= 1, "a wasted probe costs at least one reference");
    }

    #[test]
    fn advance_trusts_the_clue_epoch() {
        // The Advance trust boundary, pinned. Sender and receiver both
        // hold 10.1/16, the receiver refines to 10.1.2/24: Claim 1
        // marks the 10/8 clue Covered (any longer match would have
        // produced the longer 10.1/16 clue). Feed it 10/8 anyway — a
        // clue from a skewed epoch that still contains the destination
        // — and Advance serves the pruned FD. The checker must catch
        // the divergence; the same traffic under Simple must be sound.
        // This is exactly why the chaos harness serves with Simple and
        // the churn driver keeps clue streams epoch-consistent.
        let (sender, receiver) = pair();
        let dests = [a("10.1.2.3")];
        let clues = [Some(p("10.0.0.0/8"))];

        let mut advance = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = advance.freeze().unwrap();
        let report = check_soundness(&mut advance, &frozen, &dests, &clues);
        assert!(!report.is_sound(), "Claim 1 trusted a skewed clue — by design");
        assert_eq!(report.divergences[0].want, Some(p("10.1.2.0/24")));
        assert_eq!(report.divergences[0].got, Some(p("10.0.0.0/8")));

        let mut simple = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Simple),
        );
        let frozen = simple.freeze().unwrap();
        let report = check_soundness(&mut simple, &frozen, &dests, &clues);
        assert!(report.is_sound(), "Simple is unconditionally sound");
    }

    #[test]
    fn a_planted_divergence_is_caught_and_attributed() {
        // Differential harness sanity: feed the checker a frozen engine
        // built from a DIFFERENT table — answers legitimately differ,
        // and the checker must say so rather than vacuously pass.
        let (sender, receiver) = pair();
        let mut engine = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let other = ClueEngine::precomputed(
            &sender,
            &[p("0.0.0.0/1")],
            EngineConfig::new(Family::Regular, Method::Advance),
        )
        .freeze()
        .unwrap();
        let report =
            check_soundness(&mut engine, &other, &[a("10.1.2.3")], &[Some(p("10.1.0.0/16"))]);
        assert!(!report.is_sound());
        assert_eq!(report.divergences[0].path, "frozen");
        assert_eq!(report.divergences[0].want, Some(p("10.1.2.0/24")));
    }
}
