//! The Advance method's clue classifier — Claim 1 and the three cases of
//! Section 3.1.2.
//!
//! Given a clue `s` (a prefix of the sender's trie `t1`) and the receiver's
//! trie `t2`, the classifier decides whether a continued search below `s`
//! can ever be necessary:
//!
//! * **Case 1** — `s` is not a vertex of `t2`: the receiver's BMP is the
//!   least marked ancestor of `s`, final.
//! * **Case 2** — Claim 1 holds: *on every path descending from `s` in
//!   `t2`, a prefix of `t1` is met before (or at) the first prefix of
//!   `t2`*. Had the destination matched anything longer, the sender would
//!   have sent that longer clue — so the FD is final.
//! * **Case 3** — the inverse of Claim 1: some prefix of `t2` is reachable
//!   from `s` without crossing a prefix of `t1`. Those reachable prefixes
//!   form the **candidate set** `P(s)` (Definition 1 / Condition C1 of
//!   Section 4); only they can beat the FD, and the continued search may
//!   be restricted to them.
//!
//! The classifier is deliberately independent of *how* `t1` is known: full
//! precomputed knowledge (a snapshot of the neighbor's table), or the
//! incrementally-learned clue set (Section 3.3.1). Partial knowledge only
//! moves clues from Case 2 to Case 3 — the continuation still returns the
//! correct BMP, just at a higher cost — so learning is always safe.

use clue_trie::{Address, BinaryTrie, Prefix};

/// How a clue behaves at the receiving router, per the Advance method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification<A: Address> {
    /// Case 1: the clue vertex does not exist in the receiver's trie.
    /// `fd` is the least marked ancestor of the clue (may be `None`).
    AbsentVertex {
        /// Final decision: BMP of the clue string in the receiver's trie.
        fd: Option<Prefix<A>>,
    },
    /// Case 2: Claim 1 holds — no longer match is possible, `fd` is final.
    Covered {
        /// Final decision: BMP of the clue string in the receiver's trie.
        fd: Option<Prefix<A>>,
    },
    /// Case 3: a continued search is needed. `candidates` is `P(s)` —
    /// every receiver prefix reachable from the clue without crossing a
    /// sender prefix, sorted by (bits, length).
    Problematic {
        /// Fallback when the continued search fails.
        fd: Option<Prefix<A>>,
        /// The candidate set `P(s)` of Definition 1.
        candidates: Vec<Prefix<A>>,
    },
}

impl<A: Address> Classification<A> {
    /// The FD (final-decision) field of the clue-table entry.
    pub fn fd(&self) -> Option<Prefix<A>> {
        match self {
            Classification::AbsentVertex { fd }
            | Classification::Covered { fd }
            | Classification::Problematic { fd, .. } => *fd,
        }
    }

    /// `true` iff this clue needs a continued search (Case 3).
    pub fn is_problematic(&self) -> bool {
        matches!(self, Classification::Problematic { .. })
    }

    /// The candidate set, empty unless Case 3.
    pub fn candidates(&self) -> &[Prefix<A>] {
        match self {
            Classification::Problematic { candidates, .. } => candidates,
            _ => &[],
        }
    }
}

/// Classifies clue `s` against receiver trie `t2`, with `sender_knows`
/// answering “is this string a prefix in (what we know of) the sender's
/// table?”.
///
/// `sender_knows` is consulted only for strings strictly longer than the
/// clue itself (the clue is a sender prefix by definition, and Condition
/// C1 exempts it).
pub fn classify<A: Address, T>(
    clue: &Prefix<A>,
    t2: &BinaryTrie<A, T>,
    sender_knows: &dyn Fn(&Prefix<A>) -> bool,
) -> Classification<A> {
    let fd = t2.best_match_of_prefix(clue).map(|r| t2.prefix(r));
    let Some(node) = t2.node_of_prefix(clue) else {
        return Classification::AbsentVertex { fd };
    };

    // Pruned DFS below the clue vertex: stop descending at any vertex that
    // is a sender prefix (paths through it are covered by Claim 1); record
    // receiver prefixes reached before that as candidates.
    let mut candidates = Vec::new();
    let [l, r] = t2.children(node);
    let mut stack: Vec<_> = [l, r].into_iter().flatten().collect();
    while let Some(v) = stack.pop() {
        let vp = t2.node_prefix(v);
        if sender_knows(&vp) {
            continue; // covered: the sender would have sent this instead
        }
        if t2.is_marked(v) {
            candidates.push(vp);
        }
        for c in t2.children(v).into_iter().flatten() {
            stack.push(c);
        }
    }

    if candidates.is_empty() {
        Classification::Covered { fd }
    } else {
        candidates.sort_unstable();
        Classification::Problematic { fd, candidates }
    }
}

/// Convenience: classification of every clue a sender table could emit,
/// with full knowledge of the sender — the *pre-processing construction*
/// of Section 3.3.2. Returns `(clue, classification)` pairs.
pub fn classify_all<A: Address, T, U>(
    t1: &BinaryTrie<A, T>,
    t2: &BinaryTrie<A, U>,
) -> Vec<(Prefix<A>, Classification<A>)> {
    let knows = |p: &Prefix<A>| t1.contains_prefix(p);
    t1.prefixes()
        .map(|clue| {
            let c = classify(&clue, t2, &knows);
            (clue, c)
        })
        .collect()
}

/// The fraction of a sender's clues that are problematic at the receiver —
/// the statistic of the paper's Table 2 (measured there at 0.05 %–7 %).
pub fn problematic_fraction<A: Address, T, U>(
    t1: &BinaryTrie<A, T>,
    t2: &BinaryTrie<A, U>,
) -> f64 {
    let all = classify_all(t1, t2);
    if all.is_empty() {
        return 0.0;
    }
    let bad = all.iter().filter(|(_, c)| c.is_problematic()).count();
    bad as f64 / all.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn trie(prefixes: &[&str]) -> BinaryTrie<Ip4, ()> {
        prefixes.iter().map(|s| (p(s), ())).collect()
    }

    #[test]
    fn case1_absent_vertex() {
        let t1 = trie(&["77.0.0.0/8"]);
        let t2 = trie(&["10.0.0.0/8"]);
        let c = classify(&p("77.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        assert_eq!(c, Classification::AbsentVertex { fd: None });
    }

    #[test]
    fn case1_absent_vertex_with_ancestor_fd() {
        let t1 = trie(&["10.1.0.0/16"]);
        let t2 = trie(&["10.0.0.0/8"]);
        // 10.1/16 is not a vertex of t2 (t2's only path stops at /8).
        let c = classify(&p("10.1.0.0/16"), &t2, &|q| t1.contains_prefix(q));
        assert_eq!(c, Classification::AbsentVertex { fd: Some(p("10.0.0.0/8")) });
    }

    #[test]
    fn case2_identical_tables_are_fully_covered() {
        let t1 = trie(&["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]);
        let t2 = trie(&["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]);
        for (clue, c) in classify_all(&t1, &t2) {
            assert!(
                matches!(c, Classification::Covered { .. }),
                "clue {clue} should be covered, got {c:?}"
            );
            assert_eq!(c.fd(), Some(clue));
        }
        assert_eq!(problematic_fraction(&t1, &t2), 0.0);
    }

    #[test]
    fn case3_receiver_refines_beyond_sender() {
        // t2 refines 10/8 into a /16 the sender does not know about.
        let t1 = trie(&["10.0.0.0/8"]);
        let t2 = trie(&["10.0.0.0/8", "10.1.0.0/16"]);
        let c = classify(&p("10.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        assert!(c.is_problematic());
        assert_eq!(c.candidates(), &[p("10.1.0.0/16")]);
        assert_eq!(c.fd(), Some(p("10.0.0.0/8")));
    }

    #[test]
    fn claim1_prunes_at_sender_prefixes() {
        // The only extension of 10/8 in t2 is 10.1.2/24, but the sender
        // also has 10.1/16 on the way there — Claim 1 holds: had the
        // destination matched 10.1.2/24 it would match 10.1/16 too, and
        // the sender would have sent that longer clue.
        let t1 = trie(&["10.0.0.0/8", "10.1.0.0/16"]);
        let t2 = trie(&["10.0.0.0/8", "10.1.2.0/24"]);
        let c = classify(&p("10.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        assert_eq!(c, Classification::Covered { fd: Some(p("10.0.0.0/8")) });
    }

    #[test]
    fn inverse_claim1_candidate_on_its_own_branch() {
        // 10.2/16 in t2 is reachable from the 10/8 clue without crossing
        // any sender prefix — problematic, with exactly that candidate.
        let t1 = trie(&["10.0.0.0/8", "10.1.0.0/16"]);
        let t2 = trie(&["10.0.0.0/8", "10.1.2.0/24", "10.2.0.0/16"]);
        let c = classify(&p("10.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        assert!(c.is_problematic());
        assert_eq!(c.candidates(), &[p("10.2.0.0/16")]);
    }

    #[test]
    fn candidates_descend_through_receiver_prefixes() {
        // Both 10.2/16 and its refinement 10.2.3/24 are candidates: a
        // receiver prefix does not block the path, only a sender prefix
        // does (Condition C1).
        let t1 = trie(&["10.0.0.0/8"]);
        let t2 = trie(&["10.0.0.0/8", "10.2.0.0/16", "10.2.3.0/24"]);
        let c = classify(&p("10.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        let mut cand = c.candidates().to_vec();
        cand.sort();
        assert_eq!(cand, vec![p("10.2.0.0/16"), p("10.2.3.0/24")]);
    }

    #[test]
    fn sender_prefix_at_receiver_prefix_blocks() {
        // 10.2/16 is a prefix of *both* tries: it blocks (the sender
        // would have sent it), so nothing below it is a candidate and the
        // vertex itself is not one either.
        let t1 = trie(&["10.0.0.0/8", "10.2.0.0/16"]);
        let t2 = trie(&["10.0.0.0/8", "10.2.0.0/16", "10.2.3.0/24"]);
        let c = classify(&p("10.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        assert_eq!(c, Classification::Covered { fd: Some(p("10.0.0.0/8")) });
    }

    #[test]
    fn partial_knowledge_is_conservative() {
        // With full knowledge the clue is covered; with no knowledge it
        // degrades to problematic — never to a wrong final decision.
        let t1 = trie(&["10.0.0.0/8", "10.1.0.0/16"]);
        let t2 = trie(&["10.0.0.0/8", "10.1.0.0/16"]);
        let full = classify(&p("10.0.0.0/8"), &t2, &|q| t1.contains_prefix(q));
        assert!(matches!(full, Classification::Covered { .. }));
        let none = classify(&p("10.0.0.0/8"), &t2, &|_| false);
        assert!(none.is_problematic());
        assert_eq!(none.candidates(), &[p("10.1.0.0/16")]);
        assert_eq!(none.fd(), full.fd());
    }

    #[test]
    fn problematic_fraction_counts() {
        let t1 = trie(&["10.0.0.0/8", "20.0.0.0/8"]);
        let t2 = trie(&["10.0.0.0/8", "10.9.0.0/16", "20.0.0.0/8"]);
        // 10/8 is problematic (10.9/16 uncovered), 20/8 covered.
        assert!((problematic_fraction(&t1, &t2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fd_is_least_marked_ancestor_when_clue_unmarked_in_t2() {
        let t1 = trie(&["10.1.0.0/16"]);
        let t2 = trie(&["10.0.0.0/8", "10.1.2.0/24"]);
        // 10.1/16 is a vertex of t2 (on the path to /24) but unmarked.
        let c = classify(&p("10.1.0.0/16"), &t2, &|q| t1.contains_prefix(q));
        assert!(c.is_problematic());
        assert_eq!(c.fd(), Some(p("10.0.0.0/8")));
        assert_eq!(c.candidates(), &[p("10.1.2.0/24")]);
    }
}
