//! A fast cache in front of the clue table — Section 3.5's “parts of the
//! clues hash table can be cached and placed into the cache only if
//! touched recently”.
//!
//! The cache is an LRU over clue-table entries. A hit serves the entry
//! from fast memory (one [`clue_trie::Cost::cache_read`]); a miss falls
//! through to the backing table (one ordinary probe) and promotes the
//! entry. Because clue popularity in real traffic is heavily skewed, a
//! cache holding a small fraction of the table reaches the ≈90 % hit
//! rates the paper cites for lookup caches (Section 2, [18, 16]) — but
//! at clue-table prices: the cached object is a tiny FD/Ptr record, not
//! an expensive CAM line.

use clue_telemetry::CacheTelemetry;
use clue_trie::Prefix;

use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::table::ClueEntry;

/// Hit/miss/churn accounting for a [`ClueCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the backing table.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Intrusive doubly-linked LRU list node (indices into the arena).
#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity LRU cache.
///
/// Operations are O(1): a `HashMap` finds the slot, an intrusive doubly
/// linked list maintains recency, and eviction pops the tail.
#[derive(Debug)]
pub struct LruCache<K: Copy + Eq + core::hash::Hash, V> {
    capacity: usize,
    /// Fast-hashed: the cache probe sits on the per-packet path in
    /// front of the clue table.
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
    /// Mirrors every stats increment when attached; `None` costs one
    /// predictable branch per operation.
    telemetry: Option<CacheTelemetry>,
}

/// The Section 3.5 clue cache: LRU over full clue-table entries.
pub type ClueCache<A> = LruCache<Prefix<A>, ClueEntry<A>>;

/// A presence-only cache: tracks *which* clues are resident in fast
/// memory while the entry bytes stay in the backing table — the form
/// [`crate::ClueEngine`] uses internally.
pub type PresenceCache<A> = LruCache<Prefix<A>, ()>;

impl<K: Copy + Eq + core::hash::Hash, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            map: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
            telemetry: None,
        }
    }

    /// Mirrors hit/miss/eviction/invalidation counts into `telemetry`
    /// (shared metric cells, typically registered in a
    /// [`clue_telemetry::Registry`]) from now on.
    pub fn attach_telemetry(&mut self, telemetry: CacheTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&CacheTelemetry> {
        self.telemetry.as_ref()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up a key, recording a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                if let Some(t) = &self.telemetry {
                    t.hits.inc();
                }
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(&self.slots[i].value)
            }
            None => {
                self.stats.misses += 1;
                if let Some(t) = &self.telemetry {
                    t.misses.inc();
                }
                None
            }
        }
    }

    /// Inserts (or refreshes) a key/value, evicting the least recently
    /// used one when full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        let mut evicted = None;
        let slot_index = if self.map.len() >= self.capacity {
            // Evict the tail.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 implies a tail when full");
            self.unlink(victim);
            let old = self.slots[victim].key;
            self.map.remove(&old);
            self.stats.evictions += 1;
            if let Some(t) = &self.telemetry {
                t.evictions.inc();
            }
            evicted = Some(old);
            victim
        } else if let Some(free) = self.free.pop() {
            free
        } else {
            self.slots.push(Slot { key, value, prev: NIL, next: NIL });
            let i = self.slots.len() - 1;
            self.map.insert(key, i);
            self.push_front(i);
            return None;
        };
        self.slots[slot_index] = Slot { key, value, prev: NIL, next: NIL };
        self.map.insert(key, slot_index);
        self.push_front(slot_index);
        evicted
    }

    /// Drops a key (e.g. when the backing table reclassified its entry).
    pub fn invalidate(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                self.stats.invalidations += 1;
                if let Some(t) = &self.telemetry {
                    t.invalidations.inc();
                }
                true
            }
            None => false,
        }
    }

    /// Drops everything, keeping statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// The cached keys, most recent first (diagnostics / tests).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur].key);
            cur = self.slots[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn e(s: &str) -> ClueEntry<Ip4> {
        ClueEntry { clue: p(s), fd: Some(p(s)), cont: None }
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = ClueCache::new(2);
        assert!(c.get(&p("10.0.0.0/8")).is_none());
        c.insert(p("10.0.0.0/8"), e("10.0.0.0/8"));
        assert!(c.get(&p("10.0.0.0/8")).is_some());
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_and_invalidation_are_counted() {
        let mut c = ClueCache::new(2);
        c.insert(p("1.0.0.0/8"), e("1.0.0.0/8"));
        c.insert(p("2.0.0.0/8"), e("2.0.0.0/8"));
        c.insert(p("3.0.0.0/8"), e("3.0.0.0/8")); // evicts 1/8
        assert!(c.invalidate(&p("2.0.0.0/8")));
        assert!(!c.invalidate(&p("2.0.0.0/8"))); // absent: not counted
        let s = c.stats();
        assert_eq!((s.evictions, s.invalidations), (1, 1));
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn telemetry_mirrors_stats() {
        use clue_telemetry::Registry;
        let reg = Registry::new();
        let mut c = ClueCache::new(2);
        c.attach_telemetry(CacheTelemetry::registered(&reg, "clue_cache"));
        c.insert(p("1.0.0.0/8"), e("1.0.0.0/8"));
        c.insert(p("2.0.0.0/8"), e("2.0.0.0/8"));
        c.insert(p("3.0.0.0/8"), e("3.0.0.0/8"));
        let _ = c.get(&p("3.0.0.0/8"));
        let _ = c.get(&p("1.0.0.0/8"));
        c.invalidate(&p("2.0.0.0/8"));
        let (s, t) = (c.stats(), c.telemetry().unwrap().clone());
        assert_eq!(s.hits, t.hits.get());
        assert_eq!(s.misses, t.misses.get());
        assert_eq!(s.evictions, t.evictions.get());
        assert_eq!(s.invalidations, t.invalidations.get());
        assert!(reg.to_prometheus().contains("clue_cache_evictions_total 1"));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ClueCache::new(2);
        c.insert(p("1.0.0.0/8"), e("1.0.0.0/8"));
        c.insert(p("2.0.0.0/8"), e("2.0.0.0/8"));
        // Touch 1/8 so 2/8 becomes the LRU victim.
        assert!(c.get(&p("1.0.0.0/8")).is_some());
        let evicted = c.insert(p("3.0.0.0/8"), e("3.0.0.0/8"));
        assert_eq!(evicted, Some(p("2.0.0.0/8")));
        assert!(c.get(&p("2.0.0.0/8")).is_none());
        assert!(c.get(&p("1.0.0.0/8")).is_some());
        assert!(c.get(&p("3.0.0.0/8")).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = ClueCache::new(2);
        c.insert(p("1.0.0.0/8"), e("1.0.0.0/8"));
        c.insert(p("2.0.0.0/8"), e("2.0.0.0/8"));
        assert_eq!(c.insert(p("1.0.0.0/8"), e("1.0.0.0/8")), None);
        assert_eq!(c.keys_by_recency(), vec![p("1.0.0.0/8"), p("2.0.0.0/8")]);
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut c = ClueCache::new(2);
        c.insert(p("1.0.0.0/8"), e("1.0.0.0/8"));
        assert!(c.invalidate(&p("1.0.0.0/8")));
        assert!(!c.invalidate(&p("1.0.0.0/8")));
        assert!(c.is_empty());
        // The freed slot is reused.
        c.insert(p("2.0.0.0/8"), e("2.0.0.0/8"));
        c.insert(p("3.0.0.0/8"), e("3.0.0.0/8"));
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn recency_list_is_consistent_under_churn() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = ClueCache::new(8);
        for _ in 0..2000 {
            let k = rng.random_range(0u32..32);
            let clue = Prefix::new(Ip4(k << 24), 8);
            match rng.random_range(0..3) {
                0 => {
                    c.insert(clue, ClueEntry { clue, fd: None, cont: None });
                }
                1 => {
                    let _ = c.get(&clue);
                }
                _ => {
                    c.invalidate(&clue);
                }
            }
            assert!(c.len() <= 8);
            assert_eq!(c.keys_by_recency().len(), c.len());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ClueCache::<Ip4>::new(0);
    }
}
