//! A read-only, cache-compact compilation of a [`ClueEngine`] for the
//! batched hot path.
//!
//! The live engine is built for *change*: its trie is arena-allocated
//! with parent links, free lists and `Option<NodeId>` children, its
//! table re-classifies under route updates, and `lookup` takes `&mut
//! self` to learn, cache and count. None of that belongs on a
//! forwarding fast path. [`ClueEngine::freeze`] compiles the engine
//! into a [`FrozenEngine`]:
//!
//! * the continuation trie is laid out **breadth-first** in one
//!   contiguous array of 12-byte [`FrozenNode`]s — children are plain
//!   `u32` indices (`NONE_NODE` for absent), and the Section 4 Claim-1
//!   Boolean rides in bit 31 of the node's route word, so a continued
//!   walk reads exactly one word-aligned record per vertex it charges
//!   to [`Cost`];
//! * the clue table becomes a flat entry array behind one
//!   [`FxHashMap`] probe (the paper's single mandatory access);
//! * `lookup` takes `&self` — the frozen engine is `Sync` and can be
//!   shared across threads with no locking, which is what
//!   `clue-netsim`'s sharded driver builds on;
//! * [`FrozenEngine::lookup_batch`] processes a slice of packets with
//!   the telemetry branch hoisted out of the loop.
//!
//! **Cost parity is a hard contract**: for every (destination, clue)
//! pair the frozen engine produces the same BMP, the same
//! [`LookupClass`] and tick-for-tick the same [`Cost`] as the scalar
//! engine it was compiled from (property-tested in
//! `tests/frozen_prop.rs`). Freezing is a snapshot: later mutation of
//! the live engine does not show through.

use std::collections::HashMap;

use clue_telemetry::{LookupClass, LookupEvent, LookupTelemetry};
use clue_trie::{Address, Cost, Prefix};

use crate::engine::{ClueEngine, EngineStats, Method};
use crate::fxhash::FxHashMap;
use crate::profile::{record_walk_split, Span, Stage, StageProfiler};
use crate::stride::{PacketOp, PreparedLookup};
use crate::table::{Continuation, TableKind};

/// “No child” sentinel in [`FrozenNode::children`].
pub const NONE_NODE: u32 = u32::MAX;
/// Claim-1 continue bit: set iff a candidate may lie strictly below.
pub(crate) const CONT_BIT: u32 = 1 << 31;
/// “No route marked here” in the low 31 bits of the route word.
pub(crate) const NO_ROUTE: u32 = CONT_BIT - 1;

/// One flattened trie vertex: two child indices and a packed route
/// word (bit 31 = Claim-1 continue bit, low 31 bits = route index or
/// [`NO_ROUTE`]). 12 bytes, versus ~56 for the live arena node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FrozenNode {
    pub(crate) children: [u32; 2],
    pub(crate) route_word: u32,
}

impl FrozenNode {
    #[inline]
    pub(crate) fn may_continue(&self) -> bool {
        self.route_word & CONT_BIT != 0
    }
}

/// One flattened clue-table entry: the FD fallback plus the
/// continuation vertex ([`NONE_NODE`] = the paper's “Ptr empty”) and
/// the FD's dense tag in the extended route table
/// ([`crate::stride::NO_TAG`] when the entry has no FD).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FrozenEntry<A: Address> {
    pub(crate) fd: Option<Prefix<A>>,
    pub(crate) cont: u32,
    pub(crate) fd_tag: u32,
}

/// Why an engine could not be frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreezeError {
    /// Only the Regular (binary-trie) family has a flattened walk.
    UnsupportedFamily,
    /// Only hashed clue tables freeze; indexed slots stay live.
    UnsupportedTable,
    /// An LRU cache makes per-lookup cost history-dependent — the
    /// frozen engine is stateless by design.
    CacheEnabled,
}

impl core::fmt::Display for FreezeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FreezeError::UnsupportedFamily => {
                "only the Regular family can be frozen (flattened trie walk)"
            }
            FreezeError::UnsupportedTable => "only hashed clue tables can be frozen",
            FreezeError::CacheEnabled => {
                "an engine with an LRU cache is stateful and cannot be frozen"
            }
        })
    }
}

impl FreezeError {
    /// The engine feature that blocked the freeze, as a short
    /// machine-friendly token (`family`, `indexed-table`, `lru-cache`)
    /// — what a CLI error path names so the operator knows which knob
    /// to change.
    pub fn feature(&self) -> &'static str {
        match self {
            FreezeError::UnsupportedFamily => "family",
            FreezeError::UnsupportedTable => "indexed-table",
            FreezeError::CacheEnabled => "lru-cache",
        }
    }
}

impl std::error::Error for FreezeError {}

/// The outcome of one frozen lookup: what a scalar
/// [`ClueEngine::lookup`] would have returned, classified, and what it
/// would have charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision<A: Address> {
    /// The BMP found (the scalar lookup's return value).
    pub bmp: Option<Prefix<A>>,
    /// How the lookup resolved.
    pub class: LookupClass,
    /// Memory accesses charged, by category.
    pub cost: Cost,
}

impl<A: Address> Default for Decision<A> {
    fn default() -> Self {
        Decision { bmp: None, class: LookupClass::Clueless, cost: Cost::new() }
    }
}

/// A read-only compiled engine; see the module docs.
#[derive(Debug, Clone)]
pub struct FrozenEngine<A: Address> {
    method: Method,
    /// BFS-ordered vertices; index 0 is the root.
    nodes: Vec<FrozenNode>,
    /// Route prefixes referenced by the nodes' route words.
    routes: Vec<Prefix<A>>,
    /// Clue-table entries, dense.
    entries: Vec<FrozenEntry<A>>,
    /// Clue → entry index, one fast-hash probe per consult.
    map: FxHashMap<Prefix<A>, u32>,
    /// Inherited from the live engine at freeze time (shared cells), so
    /// frozen lookups keep feeding the same registry metrics.
    telemetry: Option<LookupTelemetry>,
}

impl<A: Address> ClueEngine<A> {
    /// Compiles this engine into a [`FrozenEngine`] snapshot.
    ///
    /// Supported configuration: [`clue_lookup::Family::Regular`] with a
    /// hashed clue table and no LRU cache — the paper's headline
    /// deployment. Any attached lookup telemetry is inherited (the
    /// frozen engine records into the same cells).
    pub fn freeze(&self) -> Result<FrozenEngine<A>, FreezeError> {
        if !self.is_regular_family() {
            return Err(FreezeError::UnsupportedFamily);
        }
        if self.table().kind() != TableKind::Hashed {
            return Err(FreezeError::UnsupportedTable);
        }
        if self.has_cache() {
            return Err(FreezeError::CacheEnabled);
        }

        let t2 = self.t2_ref();
        let bits = self.bits_bin_ref();

        // Breadth-first flattening: parents precede children, siblings
        // are adjacent, so a top-down walk streams forward through the
        // array. Remember old arena index → new index to translate the
        // table's continuation pointers and project the Claim-1 bits.
        let mut order = Vec::with_capacity(t2.node_count());
        let mut old_to_new: HashMap<usize, u32> = HashMap::with_capacity(t2.node_count());
        order.push(t2.root());
        old_to_new.insert(t2.root().index(), 0);
        let mut head = 0;
        while head < order.len() {
            let id = order[head];
            head += 1;
            for c in t2.children(id).into_iter().flatten() {
                old_to_new.insert(c.index(), order.len() as u32);
                order.push(c);
            }
        }

        let mut nodes = Vec::with_capacity(order.len());
        let mut routes = Vec::new();
        for &id in &order {
            let route = match t2.route_at(id) {
                Some(r) => {
                    let i = u32::try_from(routes.len()).expect("route count fits 31 bits");
                    assert!(i < NO_ROUTE, "route count fits 31 bits");
                    routes.push(t2.prefix(r));
                    i
                }
                None => NO_ROUTE,
            };
            // With no Claim-1 bits (Simple, or Advance without them) the
            // scalar continuation is `lookup_from`, which walks while
            // children exist — exactly an always-set continue bit.
            let cont = match bits {
                Some(b) => b.get(id.index()).copied().unwrap_or(false),
                None => true,
            };
            let children = t2.children(id).map(|c| match c {
                Some(c) => old_to_new[&c.index()],
                None => NONE_NODE,
            });
            nodes.push(FrozenNode {
                children,
                route_word: route | if cont { CONT_BIT } else { 0 },
            });
        }

        // Canonical entry order: the hashed clue table iterates in hash
        // order, which varies with insertion history. Sorting by clue
        // makes freezing a pure function of the engine's *logical*
        // state, so two engines that agree route-for-route freeze into
        // bit-identical snapshots — the contract `bit_identical` (and
        // `clue churn --check`) is built on.
        let mut table_entries: Vec<_> = self.table().entries().collect();
        table_entries.sort_by_key(|e| e.clue);

        // Dense tag dictionary: a route word's low bits already index
        // `routes`, so those indices double as tags; FD prefixes that
        // are not route-marked vertices get fresh tags appended in
        // canonical (sorted-clue) order. Every payload a compiled
        // lookup can resolve to thus has exactly one dense `u32` tag —
        // the basis of `lookup_finish_tag` on all compiled backends.
        let mut tag_of: HashMap<Prefix<A>, u32> =
            routes.iter().enumerate().map(|(i, p)| (*p, i as u32)).collect();

        let mut entries = Vec::with_capacity(self.table().len());
        let mut map = FxHashMap::default();
        for e in table_entries {
            let cont = match &e.cont {
                None => NONE_NODE,
                Some(Continuation::TrieNode(n)) => old_to_new[&n.index()],
                // The Regular family only ever builds TrieNode
                // continuations; anything else means the family check
                // above is out of sync with `build_entry`.
                Some(_) => return Err(FreezeError::UnsupportedFamily),
            };
            let fd_tag = match e.fd {
                Some(p) => *tag_of.entry(p).or_insert_with(|| {
                    let t = u32::try_from(routes.len()).expect("tag count fits u32");
                    assert!(t < NO_ROUTE, "tag count fits 31 bits");
                    routes.push(p);
                    t
                }),
                None => NO_ROUTE,
            };
            let i = u32::try_from(entries.len()).expect("clue table fits u32");
            entries.push(FrozenEntry { fd: e.fd, cont, fd_tag });
            map.insert(e.clue, i);
        }

        Ok(FrozenEngine {
            method: self.config().method,
            nodes,
            routes,
            entries,
            map,
            telemetry: self.telemetry().cloned(),
        })
    }
}

impl<A: Address> FrozenEngine<A> {
    /// Number of flattened trie vertices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of clue-table entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Resident bytes of the flattened arrays (nodes + routes + entries),
    /// excluding the hash map — the structures the hot walk touches.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * core::mem::size_of::<FrozenNode>()
            + self.routes.len() * core::mem::size_of::<Prefix<A>>()
            + self.entries.len() * core::mem::size_of::<FrozenEntry<A>>()
    }

    /// True iff the two snapshots are the same compiled artifact,
    /// field for field: same method, same flattened nodes (children
    /// and packed route words), same route array, same entry array and
    /// the same clue→entry mapping. Telemetry attachments are ignored
    /// — they are observation plumbing, not forwarding state.
    ///
    /// Because [`ClueEngine::freeze`] is canonical (BFS layout over
    /// the logical trie, entries sorted by clue), this holds exactly
    /// when the source engines agreed on every route, clue entry and
    /// Claim-1 bit — which is how `clue churn --check` proves an
    /// incrementally-updated engine equals a from-scratch rebuild.
    pub fn bit_identical(&self, other: &Self) -> bool {
        self.method == other.method
            && self.nodes == other.nodes
            && self.routes == other.routes
            && self.entries == other.entries
            && self.map.len() == other.map.len()
            && self.map.iter().all(|(clue, i)| other.map.get(clue) == Some(i))
    }

    /// Replaces the inherited telemetry bundle.
    pub fn attach_telemetry(&mut self, telemetry: LookupTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Drops the telemetry bundle (lookups stop recording).
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&LookupTelemetry> {
        self.telemetry.as_ref()
    }

    #[inline]
    fn route_prefix(&self, word: u32) -> Option<Prefix<A>> {
        let r = word & NO_ROUTE;
        (r != NO_ROUTE).then(|| self.routes[r as usize])
    }

    /// The common lookup: root-down bit walk, one access per vertex,
    /// mirroring `BinaryTrie::lookup_counted`.
    #[inline]
    fn common_walk(&self, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let mut cur = &self.nodes[0];
        cost.trie_node();
        let mut best = self.route_prefix(cur.route_word);
        for i in 0..A::BITS {
            let c = cur.children[dest.bit(i) as usize];
            if c == NONE_NODE {
                break;
            }
            cur = &self.nodes[c as usize];
            cost.trie_node();
            if let Some(p) = self.route_prefix(cur.route_word) {
                best = Some(p);
            }
        }
        best
    }

    /// The continued walk from a clue vertex at depth `depth`,
    /// mirroring `trie_walk_bits` / `lookup_from`: the start vertex is
    /// charged, then one access per vertex descended into, stopping
    /// when the continue bit clears, the address is exhausted, or the
    /// path dead-ends.
    #[inline]
    fn walk_from(&self, start: u32, mut depth: u8, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let mut cur = &self.nodes[start as usize];
        cost.trie_node();
        let mut best = self.route_prefix(cur.route_word);
        loop {
            if !cur.may_continue() || depth >= A::BITS {
                break;
            }
            let c = cur.children[dest.bit(depth) as usize];
            if c == NONE_NODE {
                break;
            }
            cur = &self.nodes[c as usize];
            depth += 1;
            cost.trie_node();
            if let Some(p) = self.route_prefix(cur.route_word) {
                best = Some(p);
            }
        }
        best
    }

    /// One frozen lookup: the scalar [`ClueEngine::lookup`] flow with
    /// learning, caching and self-mutation compiled out. Returns the
    /// BMP and the resolution class; charges `cost` identically to the
    /// scalar path.
    ///
    /// Does **not** record telemetry or stats — the batch API owns
    /// those so their branches amortize; wrap single lookups in a
    /// 1-element batch if per-packet recording is needed.
    #[inline]
    pub fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        let s = match (self.method, clue) {
            (Method::Common, _) | (_, None) => {
                return (self.common_walk(dest, cost), LookupClass::Clueless);
            }
            (_, Some(s)) => s,
        };
        if !s.contains(dest) {
            return (self.common_walk(dest, cost), LookupClass::Malformed);
        }
        cost.hash_probe();
        match self.map.get(&s) {
            Some(&i) => {
                let entry = &self.entries[i as usize];
                if entry.cont == NONE_NODE {
                    (entry.fd, LookupClass::Final)
                } else {
                    let found = self.walk_from(entry.cont, s.len(), dest, cost);
                    (found.or(entry.fd), LookupClass::Continued)
                }
            }
            // Unknown clue: full lookup, nothing learned (frozen).
            None => (self.common_walk(dest, cost), LookupClass::Miss),
        }
    }

    /// As [`Self::lookup`], packaged as a [`Decision`].
    pub fn lookup_decision(&self, dest: A, clue: Option<Prefix<A>>) -> Decision<A> {
        let mut cost = Cost::new();
        let (bmp, class) = self.lookup(dest, clue, &mut cost);
        Decision { bmp, class, cost }
    }

    /// As [`Self::lookup`], additionally attributing the lookup's
    /// predicted ticks, measured nanoseconds and touched record bytes
    /// to pipeline stages in `prof` (see [`crate::StageProfiler`]).
    ///
    /// **Semantically inert**: returns the same BMP and class and
    /// charges `cost` tick-for-tick like the unprofiled path — the
    /// stage spans observe the walk deltas, they never alter them.
    /// This is a separate function precisely so the unprofiled paths
    /// carry zero profiling overhead.
    pub fn lookup_profiled(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
        prof: &mut StageProfiler,
    ) -> (Option<Prefix<A>>, LookupClass) {
        let node_bytes = core::mem::size_of::<FrozenNode>() as u64;
        let map_bytes = core::mem::size_of::<(Prefix<A>, u32)>() as u64;
        let entry_bytes = core::mem::size_of::<FrozenEntry<A>>() as u64;
        let whole = Span::start();
        let before = cost.total();

        let profiled_common = |cost: &mut Cost, prof: &mut StageProfiler| {
            let span = Span::start();
            let mut walk = Cost::new();
            let bmp = self.common_walk(dest, &mut walk);
            let ns = span.stop();
            record_walk_split(prof, &walk, ns, node_bytes);
            *cost += walk;
            bmp
        };

        let (result, class) = 'resolved: {
            let s = match (self.method, clue) {
                (Method::Common, _) | (_, None) => {
                    break 'resolved (profiled_common(cost, prof), LookupClass::Clueless);
                }
                (_, Some(s)) => s,
            };
            if !s.contains(dest) {
                break 'resolved (profiled_common(cost, prof), LookupClass::Malformed);
            }
            cost.hash_probe();
            let span = Span::start();
            let hit = self.map.get(&s).map(|&i| self.entries[i as usize]);
            let probe_ns = span.stop();
            match hit {
                Some(entry) => {
                    prof.record(Stage::ClueProbe, 1, map_bytes + entry_bytes, probe_ns);
                    if entry.cont == NONE_NODE {
                        (entry.fd, LookupClass::Final)
                    } else {
                        let span = Span::start();
                        let mut walk = Cost::new();
                        let found = self.walk_from(entry.cont, s.len(), dest, &mut walk);
                        let ns = span.stop();
                        prof.record(
                            Stage::Continuation,
                            walk.total(),
                            node_bytes * walk.total(),
                            ns,
                        );
                        *cost += walk;
                        (found.or(entry.fd), LookupClass::Continued)
                    }
                }
                None => {
                    prof.record(Stage::ClueProbe, 1, map_bytes, probe_ns);
                    (profiled_common(cost, prof), LookupClass::Miss)
                }
            }
        };
        prof.record_lookup(cost.total() - before, whole.stop());
        (result, class)
    }

    /// Batched lookup: resolves `dests[i]` with `clues[i]` into
    /// `out[i]` and returns the per-class counts for the batch.
    ///
    /// The telemetry branch is hoisted out of the per-packet loop; with
    /// telemetry attached, every packet still records a full
    /// [`LookupEvent`] (mirroring the scalar engine's event stream,
    /// subscribers included).
    ///
    /// # Panics
    /// Panics unless `dests`, `clues` and `out` have equal lengths.
    pub fn lookup_batch(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
    ) -> EngineStats {
        assert_eq!(dests.len(), clues.len(), "one clue slot per destination");
        assert_eq!(dests.len(), out.len(), "one decision slot per destination");
        let mut stats = EngineStats::default();
        match &self.telemetry {
            None => {
                for ((&dest, &clue), slot) in dests.iter().zip(clues).zip(out.iter_mut()) {
                    let mut cost = Cost::new();
                    let (bmp, class) = self.lookup(dest, clue, &mut cost);
                    bump(&mut stats, class);
                    *slot = Decision { bmp, class, cost };
                }
            }
            Some(t) => {
                for ((&dest, &clue), slot) in dests.iter().zip(clues).zip(out.iter_mut()) {
                    let mut cost = Cost::new();
                    let (bmp, class) = self.lookup(dest, clue, &mut cost);
                    bump(&mut stats, class);
                    t.record(&LookupEvent {
                        clue_len: clue.map(|s| s.len()),
                        class,
                        search_depth: search_depth(class, cost),
                        cache_hit: None,
                        memory_references: cost.total(),
                    });
                    *slot = Decision { bmp, class, cost };
                }
            }
        }
        stats
    }

    /// As [`Self::lookup_batch`], but resizing and reusing a
    /// caller-supplied buffer — the steady-state form for drivers that
    /// loop over windows (`lookup_batch_vec` allocates a fresh `Vec`
    /// per call, which shows up once the lookups themselves are cheap).
    pub fn lookup_batch_into(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut Vec<Decision<A>>,
    ) -> EngineStats {
        out.clear();
        out.resize(dests.len(), Decision::default());
        self.lookup_batch(dests, clues, out)
    }

    /// Allocating convenience over [`Self::lookup_batch`].
    pub fn lookup_batch_vec(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
    ) -> (Vec<Decision<A>>, EngineStats) {
        let mut out = Vec::new();
        let stats = self.lookup_batch_into(dests, clues, &mut out);
        (out, stats)
    }

    /// The compiled method flavour (inherited from the live engine).
    pub fn method(&self) -> Method {
        self.method
    }

    pub(crate) fn raw_nodes(&self) -> &[FrozenNode] {
        &self.nodes
    }

    pub(crate) fn raw_routes(&self) -> &[Prefix<A>] {
        &self.routes
    }

    pub(crate) fn raw_entries(&self) -> &[FrozenEntry<A>] {
        &self.entries
    }

    pub(crate) fn raw_map(&self) -> &FxHashMap<Prefix<A>, u32> {
        &self.map
    }

    /// A per-core replica for the shared-nothing runtime. The frozen
    /// arrays are owned (this is a deep clone); telemetry is detached
    /// so replicas never contend on shared counter cells.
    pub fn replicate(&self) -> Self {
        let mut replica = self.clone();
        replica.detach_telemetry();
        replica
    }

    /// The dense tag dictionary: every prefix a lookup can resolve to
    /// (route vertices, then appended FD-only prefixes in canonical
    /// order). A [`Self::lookup_finish_tag`] result indexes this slice.
    pub fn tag_prefixes(&self) -> &[Prefix<A>] {
        &self.routes
    }

    /// As [`Self::common_walk`], resolving to the deepest route *tag*
    /// ([`crate::stride::NO_TAG`] when the walk finds no route) with
    /// identical charging.
    #[inline]
    fn common_walk_tag(&self, dest: A, cost: &mut Cost) -> u32 {
        let mut cur = &self.nodes[0];
        cost.trie_node();
        let mut best = cur.route_word & NO_ROUTE;
        for i in 0..A::BITS {
            let c = cur.children[dest.bit(i) as usize];
            if c == NONE_NODE {
                break;
            }
            cur = &self.nodes[c as usize];
            cost.trie_node();
            let r = cur.route_word & NO_ROUTE;
            if r != NO_ROUTE {
                best = r;
            }
        }
        best
    }

    /// As [`Self::walk_from`], resolving to the deepest route *tag*
    /// with identical charging.
    #[inline]
    fn walk_from_tag(&self, start: u32, mut depth: u8, dest: A, cost: &mut Cost) -> u32 {
        let mut cur = &self.nodes[start as usize];
        cost.trie_node();
        let mut best = cur.route_word & NO_ROUTE;
        loop {
            if !cur.may_continue() || depth >= A::BITS {
                break;
            }
            let c = cur.children[dest.bit(depth) as usize];
            if c == NONE_NODE {
                break;
            }
            cur = &self.nodes[c as usize];
            depth += 1;
            cost.trie_node();
            let r = cur.route_word & NO_ROUTE;
            if r != NO_ROUTE {
                best = r;
            }
        }
        best
    }

    /// Stage 1 of the split lookup: classify the packet. The frozen
    /// engine has no useful prefetch target for a table probe (the
    /// hash map's home slot is not address-computable from outside),
    /// so this only pins the classification; see
    /// [`crate::StrideEngine::lookup_prepare`] for the variant that
    /// prefetches.
    #[inline]
    pub fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup {
        let op = match (self.method, clue) {
            (Method::Common, _) | (_, None) => PacketOp::Walk(LookupClass::Clueless),
            (_, Some(s)) => {
                if s.contains(dest) {
                    PacketOp::Probe { k: 0, len: s.len() }
                } else {
                    PacketOp::Walk(LookupClass::Malformed)
                }
            }
        };
        PreparedLookup(op)
    }

    /// Stage 2 of the split lookup: resolve to a dense route tag (an
    /// index into [`Self::tag_prefixes`], [`crate::stride::NO_TAG`]
    /// for “no route”) with identical [`Cost`] charging. This is
    /// the form the serving runtime consumes — a tag indexes a
    /// precomputed next-hop table with no prefix-map probe.
    #[inline]
    pub fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass) {
        match op.0 {
            PacketOp::Walk(class) => (self.common_walk_tag(dest, cost), class),
            PacketOp::Probe { len, .. } => {
                let s = Prefix::of_address(dest, len);
                debug_assert_eq!(Some(s), clue, "prepare/finish clue mismatch");
                let _ = clue;
                cost.hash_probe();
                match self.map.get(&s) {
                    Some(&i) => {
                        let entry = &self.entries[i as usize];
                        if entry.cont == NONE_NODE {
                            (entry.fd_tag, LookupClass::Final)
                        } else {
                            let t = self.walk_from_tag(entry.cont, len, dest, cost);
                            let t = if t == NO_ROUTE { entry.fd_tag } else { t };
                            (t, LookupClass::Continued)
                        }
                    }
                    None => (self.common_walk_tag(dest, cost), LookupClass::Miss),
                }
            }
        }
    }

    /// Node counts per trie depth (level 0 is the root). The BFS
    /// layout makes each level a contiguous node range whose length is
    /// the child count of the previous one — the per-level byte map
    /// the CRAM analysis consumes.
    pub(crate) fn level_node_counts(&self) -> Vec<u64> {
        let mut levels = Vec::new();
        let mut start = 0usize;
        let mut len = 1usize;
        while len > 0 {
            levels.push(len as u64);
            let children: usize = self.nodes[start..start + len]
                .iter()
                .map(|n| {
                    usize::from(n.children[0] != NONE_NODE) + usize::from(n.children[1] != NONE_NODE)
                })
                .sum();
            start += len;
            len = children;
        }
        levels
    }
}

#[inline]
pub(crate) fn bump(stats: &mut EngineStats, class: LookupClass) {
    match class {
        LookupClass::Clueless => stats.clueless += 1,
        LookupClass::Final => stats.finals += 1,
        LookupClass::Continued => stats.continued += 1,
        LookupClass::Miss => stats.misses += 1,
        LookupClass::Malformed => stats.malformed += 1,
    }
}

/// The scalar engine reports the continuation's cost as the search
/// depth; for a Continued lookup that is everything but the mandatory
/// table probe.
#[inline]
pub(crate) fn search_depth(class: LookupClass, cost: Cost) -> u64 {
    if class == LookupClass::Continued {
        cost.total() - cost.hash_probes
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    fn tables() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
        let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
        let receiver = vec![
            p("10.0.0.0/8"),
            p("10.1.0.0/16"),
            p("10.1.2.0/24"),
            p("10.2.0.0/16"),
            p("192.168.0.0/16"),
        ];
        (sender, receiver)
    }

    fn check_parity(method: Method, dest: Ip4, clue: Option<Prefix<Ip4>>) {
        let (sender, receiver) = tables();
        let mut scalar =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(Family::Regular, method));
        let frozen = scalar.freeze().unwrap();
        let mut sc = Cost::new();
        let want = scalar.lookup(dest, clue, None, &mut sc);
        let mut fc = Cost::new();
        let (got, _) = frozen.lookup(dest, clue, &mut fc);
        assert_eq!(got, want, "{method} bmp for {dest} clue {clue:?}");
        assert_eq!(fc, sc, "{method} cost for {dest} clue {clue:?}");
    }

    #[test]
    fn parity_across_methods_and_classes() {
        for method in [Method::Common, Method::Simple, Method::Advance] {
            check_parity(method, a("10.1.2.3"), None); // clueless
            check_parity(method, a("10.1.2.3"), Some(p("10.1.0.0/16"))); // continued/final
            check_parity(method, a("10.1.99.1"), Some(p("10.1.0.0/16")));
            check_parity(method, a("192.168.3.4"), Some(p("192.168.0.0/16")));
            check_parity(method, a("10.9.9.9"), Some(p("10.0.0.0/8")));
            check_parity(method, a("10.1.2.3"), Some(p("192.168.0.0/16"))); // malformed
            check_parity(method, a("10.1.2.3"), Some(p("10.1.2.0/24"))); // miss (not a sender clue)
            check_parity(method, a("11.1.2.3"), None); // no route
        }
    }

    #[test]
    fn classes_match_scalar_stats() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        let d = frozen.lookup_decision(a("10.1.2.3"), Some(p("10.1.0.0/16")));
        assert_eq!(d.class, LookupClass::Continued);
        assert_eq!(d.bmp, Some(p("10.1.2.0/24")));
        let d = frozen.lookup_decision(a("192.168.3.4"), Some(p("192.168.0.0/16")));
        assert_eq!(d.class, LookupClass::Final);
        assert_eq!(d.cost.total(), 1, "a final hit is the paper's one access");
    }

    #[test]
    fn batch_matches_singles_and_counts_classes() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        let dests = vec![a("10.1.2.3"), a("192.168.3.4"), a("10.1.2.3"), a("7.7.7.7")];
        let clues = vec![
            Some(p("10.1.0.0/16")),
            Some(p("192.168.0.0/16")),
            Some(p("192.168.0.0/16")), // malformed
            None,
        ];
        let (batch, stats) = frozen.lookup_batch_vec(&dests, &clues);
        for (i, (&dest, &clue)) in dests.iter().zip(&clues).enumerate() {
            assert_eq!(batch[i], frozen.lookup_decision(dest, clue), "packet {i}");
        }
        assert_eq!(
            (stats.continued, stats.finals, stats.malformed, stats.clueless),
            (1, 1, 1, 1)
        );
        assert_eq!(stats.total(), 4);
    }

    #[test]
    fn batch_records_inherited_telemetry() {
        use clue_telemetry::Registry;
        let (sender, receiver) = tables();
        let mut scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let registry = Registry::new();
        scalar.instrument(&registry);
        let frozen = scalar.freeze().unwrap();
        assert!(frozen.telemetry().is_some(), "telemetry inherited at freeze");
        let dests = vec![a("10.1.2.3"), a("192.168.3.4")];
        let clues = vec![Some(p("10.1.0.0/16")), Some(p("192.168.0.0/16"))];
        let (_, stats) = frozen.lookup_batch_vec(&dests, &clues);
        let t = frozen.telemetry().unwrap();
        assert_eq!(t.lookups_total.get(), 2);
        assert_eq!(t.class_count(LookupClass::Final), stats.finals);
        assert_eq!(t.class_count(LookupClass::Continued), stats.continued);
    }

    #[test]
    fn freeze_rejects_unsupported_configurations() {
        let (sender, receiver) = tables();
        let patricia = ClueEngine::<Ip4>::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Patricia, Method::Advance),
        );
        assert_eq!(patricia.freeze().unwrap_err(), FreezeError::UnsupportedFamily);

        let indexed = ClueEngine::<Ip4>::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance).with_indexed_table(),
        );
        assert_eq!(indexed.freeze().unwrap_err(), FreezeError::UnsupportedTable);

        let mut cached = ClueEngine::<Ip4>::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        cached.enable_cache(8);
        assert_eq!(cached.freeze().unwrap_err(), FreezeError::CacheEnabled);
        assert!(FreezeError::CacheEnabled.to_string().contains("cache"));
    }

    #[test]
    fn frozen_layout_is_compact() {
        assert_eq!(core::mem::size_of::<FrozenNode>(), 12);
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        assert_eq!(frozen.entry_count(), sender.len());
        assert!(frozen.node_count() > 0);
        assert!(frozen.memory_bytes() < scalar.t2_ref().memory_bytes());
    }

    #[test]
    fn freeze_errors_name_the_offending_feature() {
        assert_eq!(FreezeError::UnsupportedFamily.feature(), "family");
        assert_eq!(FreezeError::UnsupportedTable.feature(), "indexed-table");
        assert_eq!(FreezeError::CacheEnabled.feature(), "lru-cache");
    }

    #[test]
    fn freeze_is_canonical_across_build_histories() {
        let (sender, receiver) = tables();
        let from_scratch = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );

        // Same logical end state, different history: start without two
        // routes, grow into them, with an unrelated insert/remove pair
        // thrown in to shuffle the table's hash-insertion order and the
        // trie's arena indices.
        let partial: Vec<_> =
            receiver.iter().copied().filter(|r| r.len() != 24).collect();
        let mut churned = ClueEngine::precomputed(
            &sender,
            &partial,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        churned.add_receiver_route(p("172.16.0.0/12"));
        churned.add_receiver_route(p("10.1.2.0/24"));
        churned.remove_receiver_route(&p("172.16.0.0/12"));

        let a = from_scratch.freeze().unwrap();
        let b = churned.freeze().unwrap();
        assert!(a.bit_identical(&b), "same logical state must freeze identically");
        assert!(b.bit_identical(&a), "bit-identity is symmetric");

        churned.add_receiver_route(p("10.3.0.0/16"));
        let c = churned.freeze().unwrap();
        assert!(!a.bit_identical(&c), "a differing route must show");
    }

    #[test]
    fn profiled_lookup_is_semantically_inert() {
        use crate::profile::{Stage, StageProfiler};
        let (sender, receiver) = tables();
        let cases: Vec<(Ip4, Option<Prefix<Ip4>>)> = vec![
            (a("10.1.2.3"), None),                          // clueless
            (a("10.1.2.3"), Some(p("10.1.0.0/16"))),        // continued
            (a("192.168.3.4"), Some(p("192.168.0.0/16"))),  // final
            (a("10.1.2.3"), Some(p("192.168.0.0/16"))),     // malformed
            (a("10.1.2.3"), Some(p("10.1.2.0/24"))),        // miss
            (a("11.1.2.3"), None),                          // no route
        ];
        for method in [Method::Common, Method::Simple, Method::Advance] {
            let frozen = ClueEngine::precomputed(
                &sender,
                &receiver,
                EngineConfig::new(Family::Regular, method),
            )
            .freeze()
            .unwrap();
            let mut prof = StageProfiler::new();
            for &(dest, clue) in &cases {
                let mut pc = Cost::new();
                let got = frozen.lookup_profiled(dest, clue, &mut pc, &mut prof);
                let mut uc = Cost::new();
                let want = frozen.lookup(dest, clue, &mut uc);
                assert_eq!(got, want, "{method} {dest} {clue:?}");
                assert_eq!(pc, uc, "{method} cost parity for {dest} {clue:?}");
            }
            assert_eq!(prof.lookups(), cases.len() as u64);
            // Every charged tick lands in exactly one stage.
            let charged: u64 = cases
                .iter()
                .map(|&(dest, clue)| {
                    let mut c = Cost::new();
                    frozen.lookup(dest, clue, &mut c);
                    c.total()
                })
                .sum();
            assert_eq!(prof.total_ticks(), charged, "{method} stage ticks must sum to cost");
            assert!(prof.stage(Stage::Root).visits > 0);
            assert_eq!(prof.stage(Stage::Cache).visits, 0, "frozen engines have no cache");
        }
    }

    #[test]
    fn freeze_is_a_snapshot() {
        let (sender, receiver) = tables();
        let mut scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        scalar.add_receiver_route(p("10.1.2.128/25"));
        let mut c = Cost::new();
        let (bmp, _) = frozen.lookup(a("10.1.2.200"), Some(p("10.1.0.0/16")), &mut c);
        assert_eq!(bmp, Some(p("10.1.2.0/24")), "snapshot ignores later routes");
    }
}
