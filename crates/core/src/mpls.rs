//! Integrating clue routing with MPLS / Tag-switching — Section 5.1 and
//! Figure 8 of the paper.
//!
//! In topology-driven (control-based) MPLS, a label is bound to a prefix
//! (its FEC) and packets are switched by one table read per hop. The
//! catch is the **aggregation point**: when a downstream router's table
//! contains prefixes that *extend* the label's FEC, the label alone no
//! longer determines the route, and plain MPLS performs a full IP lookup
//! to pick the new label (Figure 8's router R4).
//!
//! The paper's observation: every control-based label is implicitly a
//! clue (the FEC is the upstream BMP), so the label itself can index the
//! clue table — no hash, no extra header bits — and the aggregation-point
//! lookup collapses to a clue continuation, which Claim 1 usually makes
//! **free** (the single label-table read already fetched the FD).

use clue_trie::{Address, BinaryTrie, Cost, Prefix};

use crate::classify::{classify, Classification};

/// How the label-switching router resolves aggregation points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MplsMode {
    /// Plain MPLS / Tag-switching: a full IP lookup at aggregation
    /// points.
    Plain,
    /// The paper's hybrid: the label indexes the clue table and the
    /// lookup continues from the FEC clue.
    WithClues,
}

impl core::fmt::Display for MplsMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            MplsMode::Plain => "MPLS",
            MplsMode::WithClues => "MPLS+clue",
        })
    }
}

/// What one label-switched hop decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchDecision<A: Address> {
    /// The BMP governing the packet at this router (the route / next
    /// label binding).
    pub bmp: Option<Prefix<A>>,
    /// `true` iff this router was an aggregation point for the label.
    pub aggregation_point: bool,
}

#[derive(Debug, Clone)]
struct LabelSlot<A: Address> {
    fec: Prefix<A>,
    /// BMP of the FEC in this router's table (the switched route when no
    /// extension applies).
    fd: Option<Prefix<A>>,
    /// Extensions of the FEC exist in this router's table (Figure 8's
    /// aggregation-point condition).
    has_extensions: bool,
    /// Claim 1 verdict: even though extensions exist, none is reachable
    /// without crossing an upstream prefix — the clue hybrid stays at
    /// one access.
    claim1_final: bool,
}

/// One label-switching router: a label table bound to FECs, the router's
/// own forwarding table, and the clue machinery for the hybrid mode.
#[derive(Debug)]
pub struct MplsRouter<A: Address> {
    fib: BinaryTrie<A, ()>,
    labels: Vec<LabelSlot<A>>,
}

impl<A: Address> MplsRouter<A> {
    /// Builds the router.
    ///
    /// * `own_prefixes` — this router's forwarding table;
    /// * `fecs` — the FEC bound to each label (label = index);
    /// * `upstream_prefixes` — the label-issuing neighbor's table, used
    ///   for the Claim 1 precomputation of the hybrid mode.
    pub fn new(
        own_prefixes: &[Prefix<A>],
        fecs: &[Prefix<A>],
        upstream_prefixes: &[Prefix<A>],
    ) -> Self {
        let fib: BinaryTrie<A, ()> = own_prefixes.iter().map(|p| (*p, ())).collect();
        let upstream: std::collections::HashSet<Prefix<A>> =
            upstream_prefixes.iter().copied().collect();
        let labels = fecs
            .iter()
            .map(|fec| {
                let simple = classify(fec, &fib, &|_| false);
                let advance = classify(fec, &fib, &|p| upstream.contains(p));
                LabelSlot {
                    fec: *fec,
                    fd: simple.fd(),
                    has_extensions: simple.is_problematic(),
                    claim1_final: !matches!(advance, Classification::Problematic { .. }),
                }
            })
            .collect();
        MplsRouter { fib, labels }
    }

    /// Number of labels bound.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The FEC bound to a label.
    pub fn fec(&self, label: u32) -> Prefix<A> {
        self.labels[label as usize].fec
    }

    /// Switches one packet: reads the label slot (one indexed access),
    /// then resolves any aggregation per `mode`.
    ///
    /// # Panics
    /// Panics if `label` is unbound.
    pub fn switch(&self, label: u32, dest: A, mode: MplsMode, cost: &mut Cost) -> SwitchDecision<A> {
        let slot = &self.labels[label as usize];
        debug_assert!(slot.fec.contains(dest), "label's FEC must cover the destination");
        cost.indexed_read();
        if !slot.has_extensions {
            // Pure switching: the single table read decided the route.
            return SwitchDecision { bmp: slot.fd, aggregation_point: false };
        }
        let bmp = match mode {
            MplsMode::Plain => {
                // Figure 8: a complete standard IP lookup to re-bind.
                self.fib.lookup_counted(dest, cost).map(|r| self.fib.prefix(r))
            }
            MplsMode::WithClues => {
                if slot.claim1_final {
                    slot.fd // the clue entry (= the label slot) is final
                } else {
                    // Continue the lookup from the FEC vertex.
                    let node = self
                        .fib
                        .node_of_prefix(&slot.fec)
                        .expect("aggregation point implies the FEC vertex exists");
                    self.fib
                        .lookup_from(node, dest, cost)
                        .map(|r| self.fib.prefix(r))
                        .or(slot.fd)
                }
            }
        };
        SwitchDecision { bmp, aggregation_point: true }
    }

    /// Labels whose FEC is extended in this router's table — Figure 8's
    /// aggregation points.
    pub fn aggregation_labels(&self) -> Vec<u32> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, s)| s.has_extensions)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    /// Figure 8's situation: the upstream bound a label to 10.0/16 while
    /// this router also knows 10.0.0/24.
    fn figure8_router() -> MplsRouter<Ip4> {
        MplsRouter::new(
            &[p("10.0.0.0/16"), p("10.0.0.0/24"), p("20.0.0.0/8")],
            &[p("10.0.0.0/16"), p("20.0.0.0/8")],
            &[p("10.0.0.0/16"), p("20.0.0.0/8")],
        )
    }

    #[test]
    fn non_aggregation_label_switches_in_one_access() {
        let r = figure8_router();
        let dest: Ip4 = "20.1.2.3".parse().unwrap();
        for mode in [MplsMode::Plain, MplsMode::WithClues] {
            let mut c = Cost::new();
            let d = r.switch(1, dest, mode, &mut c);
            assert_eq!(d.bmp, Some(p("20.0.0.0/8")));
            assert!(!d.aggregation_point);
            assert_eq!(c.total(), 1, "{mode}");
        }
    }

    #[test]
    fn plain_mpls_pays_full_lookup_at_aggregation_point() {
        let r = figure8_router();
        let dest: Ip4 = "10.0.0.7".parse().unwrap();
        let mut c = Cost::new();
        let d = r.switch(0, dest, MplsMode::Plain, &mut c);
        assert_eq!(d.bmp, Some(p("10.0.0.0/24")));
        assert!(d.aggregation_point);
        assert!(c.total() > 10, "full bit-by-bit lookup expected, got {}", c.total());
    }

    #[test]
    fn clue_hybrid_continues_from_the_fec() {
        let r = figure8_router();
        let dest: Ip4 = "10.0.0.7".parse().unwrap();
        let mut c = Cost::new();
        let d = r.switch(0, dest, MplsMode::WithClues, &mut c);
        assert_eq!(d.bmp, Some(p("10.0.0.0/24")));
        assert!(d.aggregation_point);
        // 1 label read + a walk of the 8 bits below /16.
        assert!(c.total() <= 11, "clue continuation should be local, got {}", c.total());
        let mut cp = Cost::new();
        let _ = r.switch(0, dest, MplsMode::Plain, &mut cp);
        assert!(c.total() < cp.total());
    }

    #[test]
    fn claim1_makes_aggregation_free_for_the_hybrid() {
        // The upstream also knows 10.0.0/24, so Claim 1 covers the /16
        // label: had the packet matched the /24, the upstream would have
        // labelled it so.
        let r = MplsRouter::new(
            &[p("10.0.0.0/16"), p("10.0.0.0/24")],
            &[p("10.0.0.0/16")],
            &[p("10.0.0.0/16"), p("10.0.0.0/24")],
        );
        let dest: Ip4 = "10.0.200.1".parse().unwrap();
        let mut c = Cost::new();
        let d = r.switch(0, dest, MplsMode::WithClues, &mut c);
        assert_eq!(d.bmp, Some(p("10.0.0.0/16")));
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn aggregation_labels_lists_extended_fecs() {
        let r = figure8_router();
        assert_eq!(r.aggregation_labels(), vec![0]);
        assert_eq!(r.fec(0), p("10.0.0.0/16"));
        assert_eq!(r.label_count(), 2);
    }
}
