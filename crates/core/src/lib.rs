//! # clue-core
//!
//! The primary contribution of *Routing with a Clue* (Afek, Bremler-Barr,
//! Har-Peled — SIGCOMM 1999): **distributed IP lookup**.
//!
//! A router R1 forwarding a packet to R2 piggybacks a *clue* — the best
//! matching prefix it found, encoded in 5 bits (IPv4) as a pointer into
//! the destination address. R2 keeps a [`ClueTable`] whose entries say,
//! per clue, either “the final decision is already known” (the FD field)
//! or “resume the lookup here” (a family-specific [`Continuation`]). The
//! longest-prefix-match computation is thereby *distributed* along the
//! packet's path: each router starts where its upstream neighbor stopped.
//!
//! The crate provides:
//!
//! * [`EncodedClue`] / [`ClueHeader`] — the 5/7-bit wire encoding plus
//!   the optional 16-bit index of the indexing technique (Section 3.3.1);
//! * [`classify`] / [`Classification`] — the Advance method's Claim 1
//!   classifier and candidate sets (Sections 3.1.2, 4);
//! * [`ClueTable`] — hashed or sender-indexed, with the paper's FD/Ptr
//!   fields and its Section 3.5 memory model;
//! * [`ClueEngine`] — the per-neighbor lookup engine combining the clue
//!   table with any of the five lookup families, in
//!   [`Method::Simple`] or [`Method::Advance`] flavour, precomputed or
//!   learning (Figure 5 of the paper);
//! * [`neighbors`] — the Section 3.4 options for sharing tables across
//!   several neighbors (union, bit-map, sub-tables);
//! * [`mpls`] — the Section 5.1 integration with label switching: labels
//!   double as clue indices at aggregation points.
//!
//! ## Example
//!
//! ```
//! use clue_core::{ClueEngine, ClueHeader, EngineConfig, Method};
//! use clue_lookup::Family;
//! use clue_trie::{Cost, Ip4, Prefix};
//!
//! let parse = |s: &str| s.parse::<Prefix<Ip4>>().unwrap();
//! // The sender knows 10/8 and 10.1/16; the receiver additionally
//! // refines 10.2/16.
//! let sender = vec![parse("10.0.0.0/8"), parse("10.1.0.0/16")];
//! let receiver = vec![parse("10.0.0.0/8"), parse("10.1.0.0/16"), parse("10.2.0.0/16")];
//!
//! let mut engine = ClueEngine::precomputed(
//!     &sender,
//!     &receiver,
//!     EngineConfig::new(Family::Patricia, Method::Advance),
//! );
//!
//! // The upstream router found 10.1/16 — at this router that clue is
//! // final: one memory access.
//! let dest: Ip4 = "10.1.2.3".parse().unwrap();
//! let header = ClueHeader::with_clue(&parse("10.1.0.0/16"));
//! let mut cost = Cost::new();
//! let bmp = engine.lookup_with_header(dest, &header, &mut cost);
//! assert_eq!(bmp, Some(parse("10.1.0.0/16")));
//! assert_eq!(cost.total(), 1);
//! ```

// `deny`, not `forbid`: the epoch-swap module opts back in with a
// scoped `#[allow(unsafe_code)]` for its AtomicPtr reclamation — see
// the safety argument in `epoch.rs`. Everything else stays safe-only.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cache;
pub mod channel;
mod classify;
mod clue;
mod compressed;
mod cram;
mod engine;
pub mod epoch;
mod frozen;
pub mod fxhash;
pub mod mpls;
pub mod neighbors;
pub mod prefetch;
mod profile;
pub mod recursive;
pub mod reputation;
mod soundness;
mod stride;
mod table;

pub use backend::{BackendError, BackendKind, CompiledBackend};
pub use cache::{CacheStats, ClueCache, LruCache, PresenceCache};
pub use compressed::{CompressedConfig, CompressedEngine};
pub use cram::{CramLevel, CramReport, L1_BYTES, L2_BYTES, L3_BYTES};
pub use channel::{
    mpsc, spsc, MpscReceiver, MpscSender, SpscReceiver, SpscSender, TryRecvError,
};
pub use classify::{classify, classify_all, problematic_fraction, Classification};
pub use clue::{ClueHeader, EncodedClue};
pub use engine::{ClueEngine, EngineConfig, EngineStats, Method};
pub use epoch::{EpochCell, EpochEngine, EpochGuard, EpochReader};
pub use frozen::{Decision, FreezeError, FrozenEngine, NONE_NODE};
pub use profile::{Stage, StageAccum, StageProfiler};
pub use reputation::{
    BatchSignals, LinkState, NeighborReputation, QuarantineGate, ReputationBook,
    ReputationConfig, Transition,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use soundness::{check_soundness, Divergence, SoundnessReport};
pub use stride::{
    PreparedLookup, StrideConfig, StrideEngine, StrideError, DEFAULT_INITIAL_BITS,
    DEFAULT_INNER_BITS, DEFAULT_INTERLEAVE, NO_TAG,
};
pub use table::{CandidateRange, ClueEntry, ClueIndexer, ClueTable, Continuation, TableKind};
