//! A stride-compiled second representation of a [`FrozenEngine`]: the
//! multibit fast path.
//!
//! The frozen engine already lays the continuation trie out flat, but
//! a full walk still consumes one 12-byte node — one dependent load —
//! per address *bit*, and every clue consult hashes into an
//! [`FxHashMap`](crate::fxhash::FxHashMap). This module compiles the
//! frozen snapshot once more, into the layout software-LPM practice
//! actually deploys:
//!
//! * a **direct-indexed initial stride array**: the top
//!   [`StrideConfig::initial_bits`] address bits index straight into a
//!   slot that already holds the best route over that whole top-of-trie
//!   path (leaf-pushed), the number of binary-trie vertices the scalar
//!   walk would have charged, and where to continue;
//! * **multibit internal nodes** below the root array: each consumes
//!   [`StrideConfig::inner_bits`] address bits per step via controlled
//!   prefix expansion, again with leaf-pushed route words and
//!   precomputed scalar charge counts;
//! * **length-indexed flat clue buckets**: clues have at most
//!   `A::BITS + 1` distinct lengths (≤33 for IPv4), so the per-clue
//!   probe becomes "pick the bucket for this length, one multiply-shift
//!   home slot, linear scan" over a flat array — no SipHash, no
//!   FxHash, one predictable cache line for the common case;
//! * an interleaved, software-**prefetched**
//!   [`StrideEngine::lookup_batch`]: packets are processed in lockstep
//!   groups; pass one prefetches each packet's first probe target
//!   (root slot or clue-bucket home), pass two runs the walks while
//!   those fetches are in flight (see [`crate::prefetch`]).
//!
//! **The `Decision` contract is unchanged.** For every (destination,
//! clue) pair the stride engine returns the same BMP, the same
//! [`LookupClass`] and tick-for-tick the same [`Cost`] as the scalar
//! engine: `Cost` remains the paper's binary-walk accounting model, so
//! every stride slot carries the exact number of binary vertices the
//! scalar walk would have visited (`consumed`), and continued walks —
//! which must honor the Section 4 Claim-1 bit at single-bit
//! granularity from arbitrary clue depths — run on a retained copy of
//! the frozen binary nodes, unchanged. Wall-clock speed comes from
//! layout and prefetch, never from charging fewer ticks; equivalence
//! is property-tested in `tests/stride_prop.rs`.

use std::collections::HashMap;
use std::sync::Arc;

use clue_telemetry::{LookupClass, LookupEvent, LookupTelemetry, StrideTelemetry};
use clue_trie::{Address, Cost, Prefix};

use crate::engine::{ClueEngine, EngineStats, Method};
use crate::frozen::{
    bump, search_depth, Decision, FreezeError, FrozenEngine, FrozenNode, CONT_BIT, NONE_NODE,
    NO_ROUTE,
};
use crate::prefetch::prefetch_read;
use crate::profile::{Span, Stage, StageProfiler};

/// Default initial stride: 13 bits — 8192 root slots (96 KiB) cover
/// every real-table prefix shorter than a /14 in a single indexed
/// read, while staying small enough to be cache-resident next to the
/// inner nodes. Benchmarked against 8 and 16 in
/// `clue-bench/benches/stride.rs`.
pub const DEFAULT_INITIAL_BITS: u8 = 13;

/// Default inner stride width (bits consumed per multibit step).
pub const DEFAULT_INNER_BITS: u8 = 8;

/// Default interleave group for the prefetched batch loop: 8 packets
/// in flight cover an L2 miss on the machines we target without
/// spilling the per-group state out of registers. Benchmarked against
/// 1/4/16 in `clue-bench/benches/stride.rs`.
pub const DEFAULT_INTERLEAVE: usize = 8;

/// Hard cap on the interleave group: the decoded ops live in a
/// fixed stack buffer so the group loop never touches the allocator
/// (larger requests are clamped, which is semantically inert — see
/// [`StrideEngine::lookup_batch_interleaved`]).
pub(crate) const MAX_INTERLEAVE: usize = 64;

/// Largest accepted initial stride (2^20 root slots, 12 MiB).
const MAX_INITIAL_BITS: u8 = 20;

/// Largest accepted inner stride width.
const MAX_INNER_BITS: u8 = 16;

/// Empty-slot sentinel in a clue bucket (the slot's `cont` field).
pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// Occupied-and-final sentinel in a clue bucket's `cont` field: the
/// inlined entry has no Claim-1 continuation. Distinct from
/// [`EMPTY_SLOT`]; real continuation vertices are dense indices far
/// below either sentinel.
pub(crate) const FINAL_SLOT: u32 = u32::MAX - 1;

/// Shape of the stride compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Address bits resolved by the direct-indexed root array
    /// (1 ..= 20, and strictly less than `A::BITS`).
    pub initial_bits: u8,
    /// Address bits consumed per multibit inner node (1 ..= 16).
    pub inner_bits: u8,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig { initial_bits: DEFAULT_INITIAL_BITS, inner_bits: DEFAULT_INNER_BITS }
    }
}

impl StrideConfig {
    /// A config with the given strides (validated at compile time —
    /// see [`FrozenEngine::compile_stride`]).
    pub fn new(initial_bits: u8, inner_bits: u8) -> Self {
        StrideConfig { initial_bits, inner_bits }
    }

    fn validate<A: Address>(self) -> Result<(), StrideError> {
        if self.initial_bits == 0
            || self.initial_bits > MAX_INITIAL_BITS
            || self.initial_bits >= A::BITS
        {
            return Err(StrideError::InitialBits(self.initial_bits));
        }
        if self.inner_bits == 0 || self.inner_bits > MAX_INNER_BITS {
            return Err(StrideError::InnerBits(self.inner_bits));
        }
        Ok(())
    }
}

/// Why a stride compilation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrideError {
    /// The initial stride is 0, over 20, or not below the address width.
    InitialBits(u8),
    /// The inner stride is 0 or over 16.
    InnerBits(u8),
    /// The engine could not even be frozen (see [`FreezeError`]).
    Freeze(FreezeError),
}

impl core::fmt::Display for StrideError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StrideError::InitialBits(b) => write!(
                f,
                "initial stride {b} out of range (1..={MAX_INITIAL_BITS}, below the address width)"
            ),
            StrideError::InnerBits(b) => {
                write!(f, "inner stride {b} out of range (1..={MAX_INNER_BITS})")
            }
            StrideError::Freeze(e) => write!(f, "cannot freeze: {e}"),
        }
    }
}

impl std::error::Error for StrideError {}

impl From<FreezeError> for StrideError {
    fn from(e: FreezeError) -> Self {
        StrideError::Freeze(e)
    }
}

/// One root-array slot: the compiled outcome of walking the top
/// `initial_bits` of an address through the binary trie.
#[derive(Debug, Clone, Copy)]
struct RootSlot {
    /// Leaf-pushed best route over the walked path ([`NO_ROUTE`] if
    /// none marked), low 31 bits of the frozen route-word encoding.
    route_word: u32,
    /// Inner stride node to continue at, [`NONE_NODE`] if the walk
    /// dead-ends within the initial stride.
    next: u32,
    /// Binary vertices the scalar walk charges for this path: the root
    /// plus one per descended edge.
    consumed: u8,
}

/// One expanded slot of a multibit inner node.
#[derive(Debug, Clone, Copy)]
struct InnerSlot {
    /// Leaf-pushed best route among the vertices this chunk descends
    /// into ([`NO_ROUTE`] if none).
    route_word: u32,
    /// Child inner node, [`NONE_NODE`] if the walk ends here.
    child: u32,
    /// Binary vertices the scalar walk charges inside this chunk (one
    /// per descended edge; the chunk's entry vertex was charged by the
    /// previous level).
    consumed: u8,
}

/// A multibit inner node: `2^width` expanded slots starting at
/// `first_slot`, consuming address bits `base .. base + width`.
#[derive(Debug, Clone, Copy)]
struct InnerNode {
    first_slot: u32,
    base: u8,
    width: u8,
}

/// Descriptor of one length's open-addressed region inside the shared
/// flat slot array: clues of length `l` live in
/// `slots[offset .. offset + mask + 1]`, a power-of-two window at most
/// half full, so a multiply-shift home index plus a short linear scan
/// always terminates on an empty slot. Lengths with no clues point at
/// the shared always-empty sentinel slot 0 (`mask == 0`), so the probe
/// needs no emptiness branch. One flat array (instead of a `Vec` per
/// length) keeps the probe to two dependent loads: this 12-byte
/// descriptor, then the slot itself.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BucketDesc {
    pub(crate) offset: u32,
    /// `capacity - 1` of the window (0 for the empty sentinel).
    pub(crate) mask: u32,
    /// `64 - log2(capacity)` — the multiply-shift downshift.
    pub(crate) shift: u32,
}

pub(crate) const EMPTY_DESC: BucketDesc = BucketDesc { offset: 0, mask: 0, shift: 63 };

/// `fd_len` value marking an absent FD field in a [`BucketSlot`].
pub(crate) const NO_FD: u8 = u8::MAX;

/// One probe slot with the clue entry's payload inlined: a Final-class
/// lookup — the overwhelming steady-state majority — resolves with a
/// single data-dependent load (the frozen path needs the hash slot
/// *and* a separate entry record). The FD prefix is stored unpacked
/// (bits + length, [`NO_FD`] for none) and the struct is 16-aligned so
/// an IPv4 slot is 16 bytes and never straddles a cache line.
#[derive(Debug, Clone, Copy)]
#[repr(align(16))]
pub(crate) struct BucketSlot<A: Address> {
    pub(crate) key: A,
    /// Bits of the inlined FD field ([`Address::ZERO`] when absent).
    pub(crate) fd_bits: A,
    /// Inlined continuation: a vertex index into the retained binary
    /// nodes, [`FINAL_SLOT`] when the entry is final, or
    /// [`EMPTY_SLOT`] when the slot is vacant.
    pub(crate) cont: u32,
    /// Length of the inlined FD prefix, [`NO_FD`] when absent.
    pub(crate) fd_len: u8,
}

impl<A: Address> BucketSlot<A> {
    /// Rebuilds the FD field stored in this slot.
    #[inline]
    pub(crate) fn fd(&self) -> Option<Prefix<A>> {
        if self.fd_len == NO_FD {
            None
        } else {
            Some(Prefix::new(self.fd_bits, self.fd_len))
        }
    }
}

/// A packet decoded by the interleaved batch loop's first pass: either
/// a full walk (with its already-determined class) or a bucket probe
/// whose home counter is precomputed — the resolve pass starts at the
/// slot the prefetch pointed to instead of re-deriving it.
#[derive(Clone, Copy)]
pub(crate) enum PacketOp {
    /// Clue not consulted: Clueless or Malformed, walk from the root.
    Walk(LookupClass),
    /// Clue consulted: probe length `len`'s window from counter `k`.
    Probe { k: u32, len: u8 },
}

/// An opaque decoded lookup with its first probe line already
/// requested from memory — the caller-driven form of the interleaved
/// batch loop's two passes, for callers that interleave *walks* rather
/// than flat batches (see [`StrideEngine::lookup_prepare`]). Shared by
/// every compiled backend's `lookup_prepare`/`lookup_finish_tag` pair.
#[derive(Clone, Copy)]
pub struct PreparedLookup(pub(crate) PacketOp);

/// “No match” sentinel returned by
/// [`StrideEngine::lookup_finish_tag`]; every real tag is below it.
pub const NO_TAG: u32 = NO_ROUTE;

/// Fibonacci multiply-shift over the (masked) clue bits; the high bits
/// of the product index the bucket window.
#[inline]
pub(crate) fn fold_hash<A: Address>(bits: A) -> u64 {
    let x = bits.to_u128();
    (((x >> 64) as u64) ^ (x as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The stride-compiled engine; see the module docs. Compiled from a
/// [`FrozenEngine`] via [`FrozenEngine::compile_stride`], read-only
/// and `Sync` like its source.
/// All compiled arrays live behind [`Arc`]s: the engine is immutable
/// after compilation, so [`StrideEngine::replicate`] hands each worker
/// core a reference-counted view instead of deep-copying megabytes of
/// arena — cloning is a handful of refcount bumps.
#[derive(Debug, Clone)]
pub struct StrideEngine<A: Address> {
    method: Method,
    config: StrideConfig,
    /// `2^initial_bits` direct-indexed slots.
    root: Arc<Vec<RootSlot>>,
    /// Multibit nodes below the root array.
    inner: Arc<Vec<InnerNode>>,
    /// Expanded slots of every inner node, contiguous per node.
    slots: Arc<Vec<InnerSlot>>,
    /// The frozen binary nodes, retained verbatim: continued walks
    /// honor the Claim-1 bit at single-bit granularity from arbitrary
    /// clue depths, which a fixed-stride layout cannot express.
    bin_nodes: Arc<Vec<FrozenNode>>,
    /// Tag → prefix table: the route prefixes referenced by every
    /// route word first (a route word's index *is* its tag), then any
    /// FD prefixes that are not themselves routes, so every payload
    /// the engine can resolve to has exactly one tag. See
    /// [`Self::tag_prefixes`].
    routes: Arc<Vec<Prefix<A>>>,
    /// Per-length probe windows into `bucket_slots`, indexed by clue
    /// length (`A::BITS + 1` descriptors — ≤33 for IPv4).
    bucket_desc: Arc<Vec<BucketDesc>>,
    /// All length windows back to back; slot 0 is the shared empty
    /// sentinel that zero-clue lengths point at.
    bucket_slots: Arc<Vec<BucketSlot<A>>>,
    /// Per-bucket-slot FD tag into `routes` ([`NO_TAG`] when the slot
    /// has none) — the tagged twin of the inlined `fd_bits`/`fd_len`
    /// payload, kept parallel rather than widening the probed slot.
    bucket_fd_tags: Arc<Vec<u32>>,
    telemetry: Option<LookupTelemetry>,
    stride_telemetry: Option<StrideTelemetry>,
}

/// Walks `width` bits of `value` (MSB first) down the binary trie from
/// `start`, returning the edges descended, the deepest route word seen
/// among the visited vertices (optionally including `start`'s own) and
/// the end vertex ([`NONE_NODE`] on a dead end).
fn descend(
    nodes: &[FrozenNode],
    start: u32,
    value: usize,
    width: u8,
    include_start_route: bool,
) -> (u8, u32, u32) {
    let mut cur = start;
    let mut best = NO_ROUTE;
    if include_start_route && nodes[cur as usize].route_word & NO_ROUTE != NO_ROUTE {
        best = nodes[cur as usize].route_word & NO_ROUTE;
    }
    let mut edges = 0u8;
    for i in (0..width).rev() {
        let bit = (value >> i) & 1;
        let child = nodes[cur as usize].children[bit];
        if child == NONE_NODE {
            return (edges, best, NONE_NODE);
        }
        cur = child;
        edges += 1;
        let route = nodes[cur as usize].route_word & NO_ROUTE;
        if route != NO_ROUTE {
            best = route;
        }
    }
    (edges, best, cur)
}

#[inline]
fn has_children(node: &FrozenNode) -> bool {
    node.children[0] != NONE_NODE || node.children[1] != NONE_NODE
}

/// The flat length-indexed clue buckets compiled from a frozen
/// snapshot: per-length power-of-two probe windows over one shared
/// slot array (slot 0 the always-empty sentinel), with a parallel FD
/// tag array resolving into the snapshot's extended route table. Both
/// the stride and compressed backends probe this identical structure,
/// so bucket behaviour (and the single mandatory
/// [`Cost::hash_probe`] charge) cannot drift between them.
pub(crate) struct ClueBuckets<A: Address> {
    pub(crate) desc: Vec<BucketDesc>,
    pub(crate) slots: Vec<BucketSlot<A>>,
    pub(crate) fd_tags: Vec<u32>,
}

/// Builds the clue buckets in canonical (sorted-clue) order so
/// compilation stays a pure function of the snapshot. FD tags are read
/// off the frozen entries — the tag dictionary itself is assigned at
/// freeze time, shared by every backend compiled from the snapshot.
pub(crate) fn build_buckets<A: Address>(frozen: &FrozenEngine<A>) -> ClueBuckets<A> {
    let mut by_len: Vec<Vec<(A, u32)>> = vec![Vec::new(); A::BITS as usize + 1];
    let mut sorted: Vec<_> = frozen.raw_map().iter().map(|(clue, &i)| (*clue, i)).collect();
    sorted.sort_by_key(|(clue, _)| *clue);
    for (clue, i) in sorted {
        by_len[clue.len() as usize].push((clue.bits(), i));
    }
    let vacant = BucketSlot { key: A::ZERO, fd_bits: A::ZERO, cont: EMPTY_SLOT, fd_len: NO_FD };
    let entries = frozen.raw_entries();
    let mut desc_v = Vec::with_capacity(by_len.len());
    let mut slots = vec![vacant];
    let mut fd_tags = vec![NO_TAG];
    for keys in by_len {
        if keys.is_empty() {
            desc_v.push(EMPTY_DESC);
            continue;
        }
        let cap = (keys.len() * 2).next_power_of_two().max(2);
        let desc = BucketDesc {
            offset: slots.len() as u32,
            mask: (cap - 1) as u32,
            shift: 64 - cap.trailing_zeros(),
        };
        slots.resize(slots.len() + cap, vacant);
        fd_tags.resize(slots.len(), NO_TAG);
        for (bits, entry) in keys {
            let e = &entries[entry as usize];
            let cont = if e.cont == NONE_NODE { FINAL_SLOT } else { e.cont };
            let (fd_bits, fd_len) = match e.fd {
                Some(p) => (p.bits(), p.len()),
                None => (A::ZERO, NO_FD),
            };
            let mut k = (fold_hash(bits) >> desc.shift) as u32;
            loop {
                let i = (desc.offset + (k & desc.mask)) as usize;
                if slots[i].cont == EMPTY_SLOT {
                    slots[i] = BucketSlot { key: bits, fd_bits, cont, fd_len };
                    fd_tags[i] = e.fd_tag;
                    break;
                }
                debug_assert!(slots[i].key != bits, "duplicate clue in bucket");
                k = k.wrapping_add(1);
            }
        }
        desc_v.push(desc);
    }
    ClueBuckets { desc: desc_v, slots, fd_tags }
}

impl<A: Address> ClueEngine<A> {
    /// [`ClueEngine::freeze`] followed by
    /// [`FrozenEngine::compile_stride`], as one call.
    pub fn freeze_stride(&self, config: StrideConfig) -> Result<StrideEngine<A>, StrideError> {
        self.freeze()?.compile_stride(config)
    }
}

impl<A: Address> FrozenEngine<A> {
    /// Compiles this snapshot into a [`StrideEngine`]: leaf-pushed
    /// root array and multibit inner nodes via controlled prefix
    /// expansion, flat length-indexed clue buckets, and a retained
    /// copy of the binary nodes for Claim-1 continuations. Pure
    /// function of the snapshot; the frozen engine is unchanged.
    pub fn compile_stride(&self, config: StrideConfig) -> Result<StrideEngine<A>, StrideError> {
        config.validate::<A>()?;
        let nodes = self.raw_nodes();
        let s = config.initial_bits;
        let w = config.inner_bits;

        let mut inner: Vec<InnerNode> = Vec::new();
        let mut inner_bin: Vec<u32> = Vec::new(); // inner id → binary vertex
        let mut by_bin: HashMap<u32, u32> = HashMap::new();
        let mut queue: Vec<u32> = Vec::new();
        let mut alloc = |bin: u32,
                         base: u8,
                         inner: &mut Vec<InnerNode>,
                         inner_bin: &mut Vec<u32>,
                         queue: &mut Vec<u32>|
         -> u32 {
            *by_bin.entry(bin).or_insert_with(|| {
                let id = inner.len() as u32;
                let width = w.min(A::BITS - base);
                inner.push(InnerNode { first_slot: u32::MAX, base, width });
                inner_bin.push(bin);
                queue.push(id);
                id
            })
        };

        // Root array: simulate the scalar walk for every top-of-trie
        // path once, at compile time.
        let mut root = Vec::with_capacity(1usize << s);
        for value in 0..(1usize << s) {
            let (edges, best, end) = descend(nodes, 0, value, s, true);
            let next = if end != NONE_NODE && has_children(&nodes[end as usize]) {
                alloc(end, s, &mut inner, &mut inner_bin, &mut queue)
            } else {
                NONE_NODE
            };
            root.push(RootSlot { route_word: best, next, consumed: 1 + edges });
        }

        // Inner nodes, breadth-first: expand each boundary vertex into
        // 2^width slots; children found at a full-chunk walk whose end
        // vertex still branches become further inner nodes.
        let mut slots: Vec<InnerSlot> = Vec::new();
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let bin = inner_bin[id as usize];
            let InnerNode { base, width, .. } = inner[id as usize];
            inner[id as usize].first_slot = slots.len() as u32;
            for value in 0..(1usize << width) {
                let (edges, best, end) = descend(nodes, bin, value, width, false);
                let child = if end != NONE_NODE && has_children(&nodes[end as usize]) {
                    alloc(end, base + width, &mut inner, &mut inner_bin, &mut queue)
                } else {
                    NONE_NODE
                };
                slots.push(InnerSlot { route_word: best, child, consumed: edges });
            }
        }

        // Clue buckets and the tag dictionary are shared, canonical
        // structures of the snapshot — see `build_buckets`.
        let buckets = build_buckets(self);

        Ok(StrideEngine {
            method: self.method(),
            config,
            root: Arc::new(root),
            inner: Arc::new(inner),
            slots: Arc::new(slots),
            bin_nodes: Arc::new(nodes.to_vec()),
            routes: Arc::new(self.raw_routes().to_vec()),
            bucket_desc: Arc::new(buckets.desc),
            bucket_slots: Arc::new(buckets.slots),
            bucket_fd_tags: Arc::new(buckets.fd_tags),
            telemetry: self.telemetry().cloned(),
            stride_telemetry: None,
        })
    }
}

impl<A: Address> StrideEngine<A> {
    /// The compiled method flavour (inherited through the freeze).
    pub fn method(&self) -> Method {
        self.method
    }

    /// The stride shape this engine was compiled with.
    pub fn config(&self) -> StrideConfig {
        self.config
    }

    /// Number of multibit inner nodes.
    pub fn inner_node_count(&self) -> usize {
        self.inner.len()
    }

    /// Number of expanded inner slots across all multibit nodes.
    pub fn inner_slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Resident bytes of every structure the hot paths touch: root
    /// array, inner nodes and slots, retained binary nodes, routes and
    /// the payload-inlined clue buckets.
    pub fn memory_bytes(&self) -> usize {
        self.root.len() * core::mem::size_of::<RootSlot>()
            + self.inner.len() * core::mem::size_of::<InnerNode>()
            + self.slots.len() * core::mem::size_of::<InnerSlot>()
            + self.bin_nodes.len() * core::mem::size_of::<FrozenNode>()
            + self.routes.len() * core::mem::size_of::<Prefix<A>>()
            + self.bucket_desc.len() * core::mem::size_of::<BucketDesc>()
            + self.bucket_slots.len() * core::mem::size_of::<BucketSlot<A>>()
            + self.bucket_fd_tags.len() * core::mem::size_of::<u32>()
    }

    /// Bytes of the walk structures alone: root array, inner
    /// nodes/slots and the retained binary tail.
    pub(crate) fn arena_bytes(&self) -> u64 {
        (self.root.len() * core::mem::size_of::<RootSlot>()
            + self.inner.len() * core::mem::size_of::<InnerNode>()
            + self.slots.len() * core::mem::size_of::<InnerSlot>()
            + self.bin_nodes.len() * core::mem::size_of::<FrozenNode>()) as u64
    }

    /// Bytes of the clue buckets (descriptors, slots, FD tags).
    pub(crate) fn bucket_bytes(&self) -> u64 {
        (self.bucket_desc.len() * core::mem::size_of::<BucketDesc>()
            + self.bucket_slots.len() * core::mem::size_of::<BucketSlot<A>>()
            + self.bucket_fd_tags.len() * core::mem::size_of::<u32>()) as u64
    }

    /// Bytes of the tag → prefix dictionary.
    pub(crate) fn dict_bytes(&self) -> u64 {
        (self.routes.len() * core::mem::size_of::<Prefix<A>>()) as u64
    }

    /// Per-level `(resident bytes, expected visits per uniform-random
    /// clueless lookup)` of the stride walk, hottest level first:
    /// level 0 is the direct-indexed root array (always visited once),
    /// level `k > 0` groups the multibit inner nodes whose `base` is
    /// `initial + k·inner` bits. Visit probabilities propagate down
    /// the compiled graph (`P(child) = P(parent) / 2^width` per slot),
    /// which is exact for uniform destinations and fully deterministic
    /// — the input the CRAM cache-residency model consumes.
    pub(crate) fn level_profile(&self) -> Vec<(u64, f64)> {
        let mut p = vec![0.0f64; self.inner.len()];
        let root_share = 1.0 / self.root.len() as f64;
        for slot in self.root.iter() {
            if slot.next != NONE_NODE {
                p[slot.next as usize] += root_share;
            }
        }
        // Inner ids are allocated breadth-first, so every node's
        // parent has a smaller id and a forward scan is a complete DP.
        for id in 0..self.inner.len() {
            let n = self.inner[id];
            let share = p[id] / (1u64 << n.width) as f64;
            let first = n.first_slot as usize;
            for slot in &self.slots[first..first + (1usize << n.width)] {
                if slot.child != NONE_NODE {
                    p[slot.child as usize] += share;
                }
            }
        }
        let mut levels =
            vec![(self.root.len() as u64 * core::mem::size_of::<RootSlot>() as u64, 1.0f64)];
        let mut by_base: Vec<(u8, u64, f64)> = Vec::new();
        for (id, n) in self.inner.iter().enumerate() {
            let bytes = core::mem::size_of::<InnerNode>() as u64
                + (1u64 << n.width) * core::mem::size_of::<InnerSlot>() as u64;
            match by_base.iter_mut().find(|(b, _, _)| *b == n.base) {
                Some((_, lb, lv)) => {
                    *lb += bytes;
                    *lv += p[id];
                }
                None => by_base.push((n.base, bytes, p[id])),
            }
        }
        by_base.sort_by_key(|(b, _, _)| *b);
        levels.extend(by_base.into_iter().map(|(_, b, v)| (b, v)));
        levels
    }

    /// Replaces the inherited per-lookup telemetry bundle.
    pub fn attach_telemetry(&mut self, telemetry: LookupTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Attaches the stride-path bundle (batch/group/prefetch counters).
    pub fn attach_stride_telemetry(&mut self, telemetry: StrideTelemetry) {
        self.stride_telemetry = Some(telemetry);
    }

    /// A per-core replica of this engine with both telemetry bundles
    /// detached, so a worker owns no handle into shared registries —
    /// the serving runtime attributes its own counts through sharded
    /// cells instead. The compiled arrays are immutable and
    /// `Arc`-shared, so this is a constant-time refcount bump per
    /// array, not a deep copy — replicating a million-prefix engine
    /// for N workers costs microseconds, not seconds.
    pub fn replicate(&self) -> StrideEngine<A> {
        let mut replica = self.clone();
        replica.telemetry = None;
        replica.stride_telemetry = None;
        replica
    }

    /// The attached per-lookup telemetry, if any.
    pub fn telemetry(&self) -> Option<&LookupTelemetry> {
        self.telemetry.as_ref()
    }

    /// The attached stride-path telemetry, if any.
    pub fn stride_telemetry(&self) -> Option<&StrideTelemetry> {
        self.stride_telemetry.as_ref()
    }

    #[inline]
    fn root_index(&self, dest: A) -> usize {
        (dest.to_u128() >> (A::BITS - self.config.initial_bits)) as usize
    }

    #[inline]
    fn chunk(dest: A, base: u8, width: u8) -> usize {
        ((dest.to_u128() >> (A::BITS - base - width)) & ((1u128 << width) - 1)) as usize
    }

    #[inline]
    fn route_prefix(&self, word: u32) -> Option<Prefix<A>> {
        let r = word & NO_ROUTE;
        (r != NO_ROUTE).then(|| self.routes[r as usize])
    }

    /// Probes the flat clue window for length `len` starting at probe
    /// counter `k` (the multiply-shift home): one descriptor read,
    /// then a linear scan that in the half-full steady state touches a
    /// single slot — and that slot already carries the entry payload.
    #[inline]
    fn bucket_get_from(&self, len: u8, bits: A, mut k: u32) -> Option<&BucketSlot<A>> {
        let d = self.bucket_desc[len as usize];
        loop {
            let slot = &self.bucket_slots[(d.offset + (k & d.mask)) as usize];
            if slot.cont == EMPTY_SLOT {
                return None;
            }
            if slot.key == bits {
                return Some(slot);
            }
            k = k.wrapping_add(1);
        }
    }

    /// The home probe counter for `bits` in length `len`'s window.
    #[inline]
    fn bucket_home(&self, len: u8, bits: A) -> u32 {
        (fold_hash(bits) >> self.bucket_desc[len as usize].shift) as u32
    }

    #[inline]
    fn bucket_get(&self, len: u8, bits: A) -> Option<&BucketSlot<A>> {
        self.bucket_get_from(len, bits, self.bucket_home(len, bits))
    }

    /// The full (clueless) lookup on the stride layout: one indexed
    /// root read, then at most `⌈(A::BITS − initial) / inner⌉` multibit
    /// steps — while charging `cost` exactly what the scalar bit walk
    /// would have (each slot carries its precomputed vertex count).
    #[inline(never)]
    fn common_walk(&self, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let slot = &self.root[self.root_index(dest)];
        cost.trie_nodes += u64::from(slot.consumed);
        let mut best = self.route_prefix(slot.route_word);
        let mut node = slot.next;
        while node != NONE_NODE {
            let n = &self.inner[node as usize];
            let i = n.first_slot as usize + Self::chunk(dest, n.base, n.width);
            let slot = &self.slots[i];
            cost.trie_nodes += u64::from(slot.consumed);
            if let Some(p) = self.route_prefix(slot.route_word) {
                best = Some(p);
            }
            node = slot.child;
        }
        best
    }

    /// The continued walk, bit-for-bit the frozen engine's: start at
    /// the clue's continuation vertex, honor the Claim-1 bit, charge
    /// one vertex per visit. Runs on the retained binary nodes.
    #[inline(never)]
    fn walk_from(&self, start: u32, mut depth: u8, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let mut cur = &self.bin_nodes[start as usize];
        cost.trie_node();
        let mut best = self.route_prefix(cur.route_word);
        loop {
            if !cur.may_continue() || depth >= A::BITS {
                break;
            }
            let c = cur.children[dest.bit(depth) as usize];
            if c == NONE_NODE {
                break;
            }
            cur = &self.bin_nodes[c as usize];
            depth += 1;
            cost.trie_node();
            if let Some(p) = self.route_prefix(cur.route_word) {
                best = Some(p);
            }
        }
        best
    }

    /// One stride lookup: the same flow (and the same charges) as
    /// [`FrozenEngine::lookup`], with the stride structures underneath.
    /// The bucket probe still charges exactly one
    /// [`Cost::hash_probe`] — the paper's single mandatory table
    /// access; the accounting model does not change with the layout.
    #[inline]
    pub fn lookup(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        let s = match (self.method, clue) {
            (Method::Common, _) | (_, None) => {
                return (self.common_walk(dest, cost), LookupClass::Clueless);
            }
            (_, Some(s)) => s,
        };
        if !s.contains(dest) {
            return (self.common_walk(dest, cost), LookupClass::Malformed);
        }
        cost.hash_probe();
        match self.bucket_get(s.len(), s.bits()) {
            Some(slot) => {
                if slot.cont == FINAL_SLOT {
                    (slot.fd(), LookupClass::Final)
                } else {
                    let found = self.walk_from(slot.cont, s.len(), dest, cost);
                    (found.or(slot.fd()), LookupClass::Continued)
                }
            }
            None => (self.common_walk(dest, cost), LookupClass::Miss),
        }
    }

    /// As [`Self::lookup`], packaged as a [`Decision`].
    pub fn lookup_decision(&self, dest: A, clue: Option<Prefix<A>>) -> Decision<A> {
        let mut cost = Cost::new();
        let (bmp, class) = self.lookup(dest, clue, &mut cost);
        Decision { bmp, class, cost }
    }

    /// [`Self::common_walk`] with per-stage attribution: the stride
    /// layout gives Root/Inner a *real* boundary (the direct-indexed
    /// slot read vs the multibit descent), so unlike the scalar and
    /// frozen walks no proportional split is needed.
    fn common_walk_profiled(
        &self,
        dest: A,
        cost: &mut Cost,
        prof: &mut StageProfiler,
    ) -> Option<Prefix<A>> {
        let span = Span::start();
        let slot = &self.root[self.root_index(dest)];
        let consumed = u64::from(slot.consumed);
        cost.trie_nodes += consumed;
        let mut best = self.route_prefix(slot.route_word);
        let mut node = slot.next;
        let root_ns = span.stop();
        prof.record(Stage::Root, consumed, core::mem::size_of::<RootSlot>() as u64, root_ns);
        if node != NONE_NODE {
            let span = Span::start();
            let mut ticks = 0u64;
            let mut steps = 0u64;
            while node != NONE_NODE {
                let n = &self.inner[node as usize];
                let i = n.first_slot as usize + Self::chunk(dest, n.base, n.width);
                let slot = &self.slots[i];
                ticks += u64::from(slot.consumed);
                steps += 1;
                if let Some(p) = self.route_prefix(slot.route_word) {
                    best = Some(p);
                }
                node = slot.child;
            }
            let ns = span.stop();
            cost.trie_nodes += ticks;
            let step_bytes =
                (core::mem::size_of::<InnerNode>() + core::mem::size_of::<InnerSlot>()) as u64;
            prof.record(Stage::Inner, ticks, steps * step_bytes, ns);
        }
        best
    }

    /// As [`Self::lookup`], additionally attributing predicted ticks,
    /// measured nanoseconds and touched record bytes to pipeline
    /// stages in `prof`. Semantically inert: same BMP, same class,
    /// tick-for-tick the same `cost` as the unprofiled path — and a
    /// separate function, so the unprofiled path carries zero
    /// profiling overhead.
    pub fn lookup_profiled(
        &self,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
        prof: &mut StageProfiler,
    ) -> (Option<Prefix<A>>, LookupClass) {
        let node_bytes = core::mem::size_of::<FrozenNode>() as u64;
        let whole = Span::start();
        let before = cost.total();
        let (result, class) = 'resolved: {
            let s = match (self.method, clue) {
                (Method::Common, _) | (_, None) => {
                    break 'resolved (
                        self.common_walk_profiled(dest, cost, prof),
                        LookupClass::Clueless,
                    );
                }
                (_, Some(s)) => s,
            };
            if !s.contains(dest) {
                break 'resolved (
                    self.common_walk_profiled(dest, cost, prof),
                    LookupClass::Malformed,
                );
            }
            // The probe's byte model counts what the scan dereferenced:
            // the 12-byte descriptor plus every 16-byte slot visited.
            cost.hash_probe();
            let span = Span::start();
            let d = self.bucket_desc[s.len() as usize];
            let mut k = self.bucket_home(s.len(), s.bits());
            let mut scanned = 0u64;
            let hit = loop {
                let slot = &self.bucket_slots[(d.offset + (k & d.mask)) as usize];
                scanned += 1;
                if slot.cont == EMPTY_SLOT {
                    break None;
                }
                if slot.key == s.bits() {
                    break Some(*slot);
                }
                k = k.wrapping_add(1);
            };
            let probe_ns = span.stop();
            let probe_bytes = core::mem::size_of::<BucketDesc>() as u64
                + scanned * core::mem::size_of::<BucketSlot<A>>() as u64;
            prof.record(Stage::ClueProbe, 1, probe_bytes, probe_ns);
            match hit {
                Some(slot) => {
                    if slot.cont == FINAL_SLOT {
                        (slot.fd(), LookupClass::Final)
                    } else {
                        let span = Span::start();
                        let mut walk = Cost::new();
                        let found = self.walk_from(slot.cont, s.len(), dest, &mut walk);
                        let ns = span.stop();
                        prof.record(
                            Stage::Continuation,
                            walk.total(),
                            node_bytes * walk.total(),
                            ns,
                        );
                        *cost += walk;
                        (found.or(slot.fd()), LookupClass::Continued)
                    }
                }
                None => {
                    (self.common_walk_profiled(dest, cost, prof), LookupClass::Miss)
                }
            }
        };
        prof.record_lookup(cost.total() - before, whole.stop());
        (result, class)
    }

    /// Decodes one packet for the interleaved batch loop: classifies
    /// it, computes the probe position its lookup will start from,
    /// prefetches that cache line, and returns the decoded op so the
    /// resolve pass can pick up exactly where the prefetch pointed —
    /// the classify/hash work is done once, not twice.
    #[inline]
    fn decode_packet(&self, dest: A, clue: Option<Prefix<A>>) -> PacketOp {
        match (self.method, clue) {
            (Method::Common, _) | (_, None) => {
                prefetch_read(&self.root[self.root_index(dest)]);
                PacketOp::Walk(LookupClass::Clueless)
            }
            (_, Some(s)) => {
                if s.contains(dest) {
                    let len = s.len();
                    let k = self.bucket_home(len, s.bits());
                    let d = self.bucket_desc[len as usize];
                    prefetch_read(&self.bucket_slots[(d.offset + (k & d.mask)) as usize]);
                    PacketOp::Probe { k, len }
                } else {
                    prefetch_read(&self.root[self.root_index(dest)]);
                    PacketOp::Walk(LookupClass::Malformed)
                }
            }
        }
    }

    /// Resolves a packet decoded by [`Self::decode_packet`]. Produces
    /// the same `(bmp, class)` and charges the same `cost` as
    /// [`Self::lookup`] — the op merely carries the classification and
    /// home-slot computation across the two passes.
    #[inline]
    fn finish_packet(
        &self,
        op: PacketOp,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        match op {
            PacketOp::Walk(class) => (self.common_walk(dest, cost), class),
            PacketOp::Probe { k, len } => {
                cost.hash_probe();
                let s = clue.expect("a probe op is only decoded from a present clue");
                match self.bucket_get_from(len, s.bits(), k) {
                    Some(slot) => {
                        if slot.cont == FINAL_SLOT {
                            (slot.fd(), LookupClass::Final)
                        } else {
                            let found = self.walk_from(slot.cont, len, dest, cost);
                            (found.or(slot.fd()), LookupClass::Continued)
                        }
                    }
                    None => (self.common_walk(dest, cost), LookupClass::Miss),
                }
            }
        }
    }

    /// Decodes one packet and prefetches the cache line its lookup
    /// will start from, without resolving it — the caller-driven form
    /// of the interleaved batch loop, for callers whose packets are
    /// not adjacent in a flat batch (e.g. interleaved trie *walks*
    /// where each packet is at a different router). Resolve with
    /// [`Self::lookup_finish`], passing the same `dest` and `clue`;
    /// the longer the caller waits between the two, the more of the
    /// fetch latency is hidden.
    #[inline]
    pub fn lookup_prepare(&self, dest: A, clue: Option<Prefix<A>>) -> PreparedLookup {
        PreparedLookup(self.decode_packet(dest, clue))
    }

    /// Resolves a lookup decoded by [`Self::lookup_prepare`]: same
    /// `(bmp, class)` and same [`Cost`] charges as [`Self::lookup`]
    /// on the same `(dest, clue)`.
    #[inline]
    pub fn lookup_finish(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (Option<Prefix<A>>, LookupClass) {
        self.finish_packet(op.0, dest, clue, cost)
    }

    /// [`Self::common_walk`], resolving to the deepest route *word*
    /// ([`NO_TAG`] when nothing matched) instead of loading the route
    /// prefix at every deepening step.
    #[inline(never)]
    fn common_walk_tag(&self, dest: A, cost: &mut Cost) -> u32 {
        let slot = &self.root[self.root_index(dest)];
        cost.trie_nodes += u64::from(slot.consumed);
        let mut best = slot.route_word & NO_ROUTE;
        let mut node = slot.next;
        while node != NONE_NODE {
            let n = &self.inner[node as usize];
            let i = n.first_slot as usize + Self::chunk(dest, n.base, n.width);
            let slot = &self.slots[i];
            cost.trie_nodes += u64::from(slot.consumed);
            let r = slot.route_word & NO_ROUTE;
            if r != NO_ROUTE {
                best = r;
            }
            node = slot.child;
        }
        best
    }

    /// [`Self::walk_from`], resolving to the deepest route word
    /// ([`NO_TAG`] when nothing matched). Identical charges.
    #[inline(never)]
    fn walk_from_tag(&self, start: u32, mut depth: u8, dest: A, cost: &mut Cost) -> u32 {
        let mut cur = &self.bin_nodes[start as usize];
        cost.trie_node();
        let mut best = cur.route_word & NO_ROUTE;
        loop {
            if !cur.may_continue() || depth >= A::BITS {
                break;
            }
            let c = cur.children[dest.bit(depth) as usize];
            if c == NONE_NODE {
                break;
            }
            cur = &self.bin_nodes[c as usize];
            depth += 1;
            cost.trie_node();
            let r = cur.route_word & NO_ROUTE;
            if r != NO_ROUTE {
                best = r;
            }
        }
        best
    }

    /// [`Self::bucket_get_from`], returning the absolute slot index so
    /// the caller can also read the parallel `bucket_fd_tags` entry.
    #[inline]
    fn bucket_probe_from(&self, len: u8, bits: A, mut k: u32) -> Option<usize> {
        let d = self.bucket_desc[len as usize];
        loop {
            let i = (d.offset + (k & d.mask)) as usize;
            let slot = &self.bucket_slots[i];
            if slot.cont == EMPTY_SLOT {
                return None;
            }
            if slot.key == bits {
                return Some(i);
            }
            k = k.wrapping_add(1);
        }
    }

    /// As [`Self::lookup_finish`], resolving to a *tag* instead of a
    /// prefix: the winning payload's index in [`Self::tag_prefixes`],
    /// or [`NO_TAG`] for no match. `tag_prefixes()[tag]` is exactly
    /// the prefix `lookup_finish` would have returned, the class and
    /// [`Cost`] charges are identical, and tags are stable for the
    /// engine's lifetime — so a caller that post-processes every
    /// result through a per-prefix side table (say prefix → next hop)
    /// can index a tag-addressed array and skip the hash a prefix key
    /// would cost on every lookup.
    #[inline]
    pub fn lookup_finish_tag(
        &self,
        op: PreparedLookup,
        dest: A,
        clue: Option<Prefix<A>>,
        cost: &mut Cost,
    ) -> (u32, LookupClass) {
        match op.0 {
            PacketOp::Walk(class) => (self.common_walk_tag(dest, cost), class),
            PacketOp::Probe { k, len } => {
                cost.hash_probe();
                let s = clue.expect("a probe op is only decoded from a present clue");
                match self.bucket_probe_from(len, s.bits(), k) {
                    Some(i) => {
                        let slot = &self.bucket_slots[i];
                        if slot.cont == FINAL_SLOT {
                            (self.bucket_fd_tags[i], LookupClass::Final)
                        } else {
                            let found = self.walk_from_tag(slot.cont, len, dest, cost);
                            let tag =
                                if found != NO_TAG { found } else { self.bucket_fd_tags[i] };
                            (tag, LookupClass::Continued)
                        }
                    }
                    None => (self.common_walk_tag(dest, cost), LookupClass::Miss),
                }
            }
        }
    }

    /// The tag → prefix table behind [`Self::lookup_finish_tag`]: the
    /// compiled route prefixes first (a route word's index is its
    /// tag), then any FD prefixes that are not themselves routes.
    pub fn tag_prefixes(&self) -> &[Prefix<A>] {
        &self.routes
    }

    /// Batched lookup at the default interleave
    /// ([`DEFAULT_INTERLEAVE`]); see
    /// [`Self::lookup_batch_interleaved`].
    ///
    /// # Panics
    /// Panics unless `dests`, `clues` and `out` have equal lengths.
    pub fn lookup_batch(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
    ) -> EngineStats {
        self.lookup_batch_interleaved(dests, clues, out, DEFAULT_INTERLEAVE)
    }

    /// Batched lookup in lockstep groups of `group` packets: pass one
    /// prefetches each packet's first probe target, pass two resolves
    /// the group while the fetches are in flight. `group <= 1`
    /// disables the prefetch pass; larger groups are clamped to an
    /// internal cap (64) so the decoded ops stay on the stack. The
    /// resolved decisions and stats are identical at every group size
    /// — interleave is a latency treatment, not a semantic one.
    ///
    /// # Panics
    /// Panics unless `dests`, `clues` and `out` have equal lengths.
    pub fn lookup_batch_interleaved(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
    ) -> EngineStats {
        assert_eq!(dests.len(), clues.len(), "one clue slot per destination");
        assert_eq!(dests.len(), out.len(), "one decision slot per destination");
        let group = group.max(1);
        // The telemetry branch is hoisted clear of the loops; both arms
        // monomorphize `batch_core` with their record closure inlined.
        let (stats, groups, prefetches) = match &self.telemetry {
            None => self.batch_core(dests, clues, out, group, |_, _, _| {}),
            Some(t) => self.batch_core(dests, clues, out, group, |clue_len, class, cost| {
                t.record(&LookupEvent {
                    clue_len,
                    class,
                    search_depth: search_depth(class, cost),
                    cache_hit: None,
                    memory_references: cost.total(),
                });
            }),
        };
        if let Some(st) = &self.stride_telemetry {
            st.record_batch(dests.len() as u64, groups, prefetches);
        }
        stats
    }

    /// The batch loop body. With `group > 1` each group is resolved in
    /// two passes — decode-and-prefetch, then finish from the decoded
    /// ops — so every prefetch has a group's worth of work to hide
    /// behind and the classify/hash step runs once per packet. Returns
    /// `(stats, groups, prefetches)` for the stride telemetry record.
    fn batch_core(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut [Decision<A>],
        group: usize,
        mut record: impl FnMut(Option<u8>, LookupClass, Cost),
    ) -> (EngineStats, u64, u64) {
        let mut stats = EngineStats::default();
        let mut groups = 0u64;
        let mut prefetches = 0u64;
        if group <= 1 {
            groups = dests.len() as u64;
            for ((&dest, &clue), slot) in dests.iter().zip(clues).zip(out.iter_mut()) {
                let mut cost = Cost::new();
                let (bmp, class) = self.lookup(dest, clue, &mut cost);
                bump(&mut stats, class);
                record(clue.map(|s| s.len()), class, cost);
                *slot = Decision { bmp, class, cost };
            }
        } else {
            let group = group.min(MAX_INTERLEAVE);
            let mut ops = [PacketOp::Walk(LookupClass::Clueless); MAX_INTERLEAVE];
            for ((dests, clues), out) in dests
                .chunks(group)
                .zip(clues.chunks(group))
                .zip(out.chunks_mut(group))
            {
                groups += 1;
                prefetches += dests.len() as u64;
                for ((&dest, &clue), op) in dests.iter().zip(clues).zip(ops.iter_mut()) {
                    *op = self.decode_packet(dest, clue);
                }
                for (((&dest, &clue), slot), &op) in
                    dests.iter().zip(clues).zip(out.iter_mut()).zip(&ops)
                {
                    let mut cost = Cost::new();
                    let (bmp, class) = self.finish_packet(op, dest, clue, &mut cost);
                    bump(&mut stats, class);
                    record(clue.map(|s| s.len()), class, cost);
                    *slot = Decision { bmp, class, cost };
                }
            }
        }
        (stats, groups, prefetches)
    }

    /// As [`Self::lookup_batch`], resizing and reusing a
    /// caller-supplied buffer.
    pub fn lookup_batch_into(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
        out: &mut Vec<Decision<A>>,
    ) -> EngineStats {
        out.clear();
        out.resize(dests.len(), Decision::default());
        self.lookup_batch(dests, clues, out)
    }

    /// Allocating convenience over [`Self::lookup_batch`].
    pub fn lookup_batch_vec(
        &self,
        dests: &[A],
        clues: &[Option<Prefix<A>>],
    ) -> (Vec<Decision<A>>, EngineStats) {
        let mut out = Vec::new();
        let stats = self.lookup_batch_into(dests, clues, &mut out);
        (out, stats)
    }
}

// The Claim-1 bit must survive the recompilation untouched: assert the
// encoding the retained nodes rely on is the frozen one.
const _: () = assert!(CONT_BIT == 1 << 31);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    fn tables() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
        let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
        let receiver = vec![
            p("10.0.0.0/8"),
            p("10.1.0.0/16"),
            p("10.1.2.0/24"),
            p("10.2.0.0/16"),
            p("192.168.0.0/16"),
        ];
        (sender, receiver)
    }

    fn configs() -> [StrideConfig; 4] {
        [
            StrideConfig::default(),
            StrideConfig::new(8, 8),
            StrideConfig::new(16, 8),
            StrideConfig::new(5, 3),
        ]
    }

    fn check_parity(
        method: Method,
        config: StrideConfig,
        dest: Ip4,
        clue: Option<Prefix<Ip4>>,
    ) {
        let (sender, receiver) = tables();
        let mut scalar =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(Family::Regular, method));
        let frozen = scalar.freeze().unwrap();
        let stride = frozen.compile_stride(config).unwrap();
        let mut sc = Cost::new();
        let want = scalar.lookup(dest, clue, None, &mut sc);
        let d = stride.lookup_decision(dest, clue);
        assert_eq!(d.bmp, want, "{method} {config:?} bmp for {dest} clue {clue:?}");
        assert_eq!(d.cost, sc, "{method} {config:?} cost for {dest} clue {clue:?}");
        assert_eq!(d, frozen.lookup_decision(dest, clue), "stride == frozen decision");
    }

    #[test]
    fn parity_across_methods_classes_and_strides() {
        for method in [Method::Common, Method::Simple, Method::Advance] {
            for config in configs() {
                check_parity(method, config, a("10.1.2.3"), None); // clueless
                check_parity(method, config, a("10.1.2.3"), Some(p("10.1.0.0/16")));
                check_parity(method, config, a("10.1.99.1"), Some(p("10.1.0.0/16")));
                check_parity(method, config, a("192.168.3.4"), Some(p("192.168.0.0/16")));
                check_parity(method, config, a("10.9.9.9"), Some(p("10.0.0.0/8")));
                check_parity(method, config, a("10.1.2.3"), Some(p("192.168.0.0/16"))); // malformed
                check_parity(method, config, a("10.1.2.3"), Some(p("10.1.2.0/24"))); // miss
                check_parity(method, config, a("11.1.2.3"), None); // no route
            }
        }
    }

    #[test]
    fn interleave_is_semantically_inert() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let stride = scalar.freeze_stride(StrideConfig::default()).unwrap();
        let dests = vec![a("10.1.2.3"), a("192.168.3.4"), a("10.1.2.3"), a("7.7.7.7")];
        let clues = vec![
            Some(p("10.1.0.0/16")),
            Some(p("192.168.0.0/16")),
            Some(p("192.168.0.0/16")), // malformed
            None,
        ];
        let (want, want_stats) = stride.lookup_batch_vec(&dests, &clues);
        for group in [0, 1, 2, 3, 8, 64] {
            let mut out = vec![Decision::default(); dests.len()];
            let stats = stride.lookup_batch_interleaved(&dests, &clues, &mut out, group);
            assert_eq!(out, want, "group {group}");
            assert_eq!(stats, want_stats, "group {group}");
        }
        for (i, (&dest, &clue)) in dests.iter().zip(&clues).enumerate() {
            assert_eq!(want[i], stride.lookup_decision(dest, clue), "packet {i}");
        }
        assert_eq!(
            (want_stats.continued, want_stats.finals, want_stats.malformed, want_stats.clueless),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn batch_into_reuses_the_buffer() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let stride = scalar.freeze_stride(StrideConfig::default()).unwrap();
        let dests = vec![a("10.1.2.3"), a("192.168.3.4")];
        let clues = vec![Some(p("10.1.0.0/16")), None];
        let mut out = Vec::with_capacity(16);
        stride.lookup_batch_into(&dests, &clues, &mut out);
        let ptr = out.as_ptr();
        let (want, _) = stride.lookup_batch_vec(&dests, &clues);
        stride.lookup_batch_into(&dests, &clues, &mut out);
        assert_eq!(out, want);
        assert_eq!(out.as_ptr(), ptr, "no reallocation on reuse");
    }

    #[test]
    fn telemetry_streams_are_recorded() {
        use clue_telemetry::Registry;
        let (sender, receiver) = tables();
        let mut scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let registry = Registry::new();
        scalar.instrument(&registry);
        let mut stride = scalar.freeze_stride(StrideConfig::default()).unwrap();
        assert!(stride.telemetry().is_some(), "lookup telemetry inherited through freeze");
        stride.attach_stride_telemetry(StrideTelemetry::registered(&registry, "clue_stride"));
        let dests = vec![a("10.1.2.3"), a("192.168.3.4"), a("10.9.9.9")];
        let clues = vec![Some(p("10.1.0.0/16")), Some(p("192.168.0.0/16")), None];
        let mut out = vec![Decision::default(); dests.len()];
        let stats = stride.lookup_batch_interleaved(&dests, &clues, &mut out, 2);
        let t = stride.telemetry().unwrap();
        assert_eq!(t.lookups_total.get(), 3);
        assert_eq!(t.class_count(LookupClass::Final), stats.finals);
        let st = stride.stride_telemetry().unwrap();
        assert_eq!(st.batches_total.get(), 1);
        assert_eq!(st.packets_total.get(), 3);
        assert_eq!(st.groups_total.get(), 2);
        assert_eq!(st.prefetches_total.get(), 3);
    }

    #[test]
    fn profiled_lookup_is_semantically_inert() {
        use crate::profile::{Stage, StageProfiler};
        let (sender, receiver) = tables();
        let cases: Vec<(Ip4, Option<Prefix<Ip4>>)> = vec![
            (a("10.1.2.3"), None),                          // clueless
            (a("10.1.2.3"), Some(p("10.1.0.0/16"))),        // continued
            (a("192.168.3.4"), Some(p("192.168.0.0/16"))),  // final
            (a("10.1.2.3"), Some(p("192.168.0.0/16"))),     // malformed
            (a("10.1.2.3"), Some(p("10.1.2.0/24"))),        // miss
            (a("11.1.2.3"), None),                          // no route
        ];
        for method in [Method::Common, Method::Simple, Method::Advance] {
            for config in configs() {
                let stride = ClueEngine::precomputed(
                    &sender,
                    &receiver,
                    EngineConfig::new(Family::Regular, method),
                )
                .freeze_stride(config)
                .unwrap();
                let mut prof = StageProfiler::new();
                for &(dest, clue) in &cases {
                    let mut pc = Cost::new();
                    let got = stride.lookup_profiled(dest, clue, &mut pc, &mut prof);
                    let mut uc = Cost::new();
                    let want = stride.lookup(dest, clue, &mut uc);
                    assert_eq!(got, want, "{method} {config:?} {dest} {clue:?}");
                    assert_eq!(pc, uc, "{method} {config:?} cost parity for {dest} {clue:?}");
                }
                assert_eq!(prof.lookups(), cases.len() as u64);
                let charged: u64 = cases
                    .iter()
                    .map(|&(dest, clue)| stride.lookup_decision(dest, clue).cost.total())
                    .sum();
                assert_eq!(
                    prof.total_ticks(),
                    charged,
                    "{method} {config:?} stage ticks must sum to cost"
                );
                assert!(prof.stage(Stage::Root).visits > 0);
                assert_eq!(prof.stage(Stage::Cache).visits, 0, "stride engines have no cache");
            }
        }
    }

    #[test]
    fn compile_rejects_bad_strides() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::<Ip4>::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        for bad in [0, 21, 32, 40] {
            assert_eq!(
                frozen.compile_stride(StrideConfig::new(bad, 8)).unwrap_err(),
                StrideError::InitialBits(bad)
            );
        }
        for bad in [0, 17] {
            assert_eq!(
                frozen.compile_stride(StrideConfig::new(13, bad)).unwrap_err(),
                StrideError::InnerBits(bad)
            );
        }
        assert!(StrideError::InitialBits(0).to_string().contains("initial stride"));
        assert!(StrideError::Freeze(FreezeError::CacheEnabled).to_string().contains("cache"));
    }

    #[test]
    fn freeze_stride_surfaces_freeze_errors() {
        let (sender, receiver) = tables();
        let patricia = ClueEngine::<Ip4>::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Patricia, Method::Advance),
        );
        assert_eq!(
            patricia.freeze_stride(StrideConfig::default()).unwrap_err(),
            StrideError::Freeze(FreezeError::UnsupportedFamily)
        );
    }

    #[test]
    fn stride_layout_is_compact() {
        assert_eq!(core::mem::size_of::<RootSlot>(), 12);
        assert_eq!(core::mem::size_of::<InnerSlot>(), 12);
        assert_eq!(core::mem::size_of::<InnerNode>(), 8);
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let stride = scalar.freeze_stride(StrideConfig::new(8, 8)).unwrap();
        assert_eq!(stride.root.len(), 256);
        assert!(stride.inner_node_count() > 0);
        assert_eq!(stride.inner_slot_count(), stride.inner_node_count() * 256);
        assert!(stride.memory_bytes() > 0);
        assert_eq!(stride.method(), Method::Advance);
        assert_eq!(stride.config(), StrideConfig::new(8, 8));
    }

    #[test]
    fn buckets_find_every_clue_and_only_clues() {
        let (sender, receiver) = tables();
        let scalar = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let frozen = scalar.freeze().unwrap();
        let stride = frozen.compile_stride(StrideConfig::default()).unwrap();
        for (clue, &i) in frozen.raw_map() {
            let entry = &frozen.raw_entries()[i as usize];
            let slot = stride
                .bucket_get(clue.len(), clue.bits())
                .unwrap_or_else(|| panic!("clue {clue} missing from its bucket"));
            assert_eq!(slot.key, clue.bits());
            assert_eq!(slot.fd(), entry.fd, "inlined FD diverges for {clue}");
            let want = if entry.cont == NONE_NODE { FINAL_SLOT } else { entry.cont };
            assert_eq!(slot.cont, want, "inlined continuation diverges for {clue}");
        }
        assert!(
            stride.bucket_get(24, a("10.1.2.0")).is_none(),
            "receiver-only route is no clue"
        );
        assert!(
            stride.bucket_get(0, Ip4::ZERO).is_none(),
            "length-0 window is the empty sentinel"
        );
    }
}
