//! Lock-free bounded packet channels — the inter-core fabric of the
//! shared-nothing serving runtime.
//!
//! The multi-core runtime (ROADMAP item 1, after flashroute's "mutex or
//! rwlock free; all inter-task communications through message channels
//! or atomic operations" idiom) needs exactly two communication shapes:
//!
//! * a **dispatcher → worker** feed, one producer and one consumer per
//!   link: [`spsc`], a bounded single-producer single-consumer ring;
//! * a **workers → collector** drain, many producers and one consumer:
//!   [`mpsc`], a bounded Vyukov-style multi-producer ring.
//!
//! Both are fixed-capacity rings over power-of-two buffers, with the
//! head and tail counters on their own cache lines so the producer and
//! consumer never write the same line in steady state. Neither ever
//! blocks, allocates after construction, or takes a lock: full and
//! empty are ordinary `Err`/`None` returns the caller retries (the
//! runtime's workers yield between polls, so an idle link costs a
//! scheduler hint, not a spin).
//!
//! # Memory-ordering protocol
//!
//! The rings are pure Release/Acquire; no fence in this module is (or
//! needs to be) `SeqCst`:
//!
//! * The SPSC producer writes the slot, then publishes it with a
//!   `Release` store of `tail`; the consumer observes `tail` with an
//!   `Acquire` load before reading the slot, so the slot write
//!   *happens-before* the read. Frees travel the other way through the
//!   same pattern on `head`.
//! * The MPSC ring tags every slot with a sequence counter: a producer
//!   claims a slot with a `Relaxed` CAS on the enqueue counter (the
//!   claim needs atomicity, not ordering — the slot's own sequence
//!   carries the ordering), writes the value, then publishes with a
//!   `Release` store of the sequence; the consumer's `Acquire` load of
//!   the sequence is what synchronises with it.
//! * Close/disconnect is a `Release` store (or drop-count decrement)
//!   observed by an `Acquire` load, and the consumer re-polls the data
//!   path *after* observing it; since the producer closed *after* its
//!   last publish, that final poll must observe every published slot.
//!
//! Release/Acquire suffices throughout because every decision a thread
//! makes here is justified by a value some *other specific* thread
//! published — pairwise edges, never a global order over independent
//! writes. The one store-load pattern in the workspace that does need
//! sequential consistency is the epoch pin in [`crate::epoch`] (a
//! reader announces its pin, *then* loads the snapshot pointer, racing
//! a writer that swaps the pointer and *then* scans the pins); that is
//! where the workspace's single `SeqCst` protocol lives, and the
//! runtime inherits it only on the cold re-pin path, never per packet.
//!
//! Counters are monotonically increasing `usize`s (slot = counter mod
//! capacity); at any realistic rate a 64-bit counter cannot wrap within
//! the lifetime of a process, which the implementation relies on.
//!
//! This is, next to `epoch.rs`, the second module in `clue-core` that
//! opts back into `unsafe` (slot storage is `MaybeUninit` published by
//! the protocol above); everything else in the crate stays safe-only.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;

/// A value alone on its cache line, so two hot counters never share one.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// Rounds a requested capacity to the ring size actually allocated:
/// the next power of two, at least 2.
fn ring_capacity(capacity: usize) -> usize {
    capacity.max(2).next_power_of_two()
}

// ---------------------------------------------------------------------
// SPSC
// ---------------------------------------------------------------------

/// Shared state of one SPSC ring.
struct SpscShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written by the consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written by the producer only.
    tail: CachePadded<AtomicUsize>,
    closed: AtomicBool,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly
// one other thread under the Release/Acquire protocol in the module
// docs; sharing the ring structure itself only exposes atomics.
unsafe impl<T: Send> Send for SpscShared<T> {}
unsafe impl<T: Send> Sync for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // `&mut self`: both endpoints are gone, so the in-flight range
        // [head, tail) is exclusively ours to drop.
        let head = self.head.0.load(Relaxed);
        let tail = self.tail.0.load(Relaxed);
        for i in head..tail {
            // SAFETY: every slot in [head, tail) was written by
            // `try_send` and never read back.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// Creates a bounded single-producer single-consumer ring holding at
/// least `capacity` items (rounded up to a power of two, minimum 2).
///
/// The sender and receiver are independent `Send` handles: move one
/// into the producing thread and one into the consuming thread.
pub fn spsc<T: Send>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let cap = ring_capacity(capacity);
    let buf = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(SpscShared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        SpscSender { shared: Arc::clone(&shared), cached_head: 0 },
        SpscReceiver { shared, cached_tail: 0 },
    )
}

/// Why a receive attempt returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The ring is momentarily empty; the producer is still attached.
    Empty,
    /// The producer closed (or dropped) and every item has been drained.
    Disconnected,
}

/// The producing endpoint of an [`spsc`] ring.
pub struct SpscSender<T> {
    shared: Arc<SpscShared<T>>,
    /// Local copy of the consumer's head — refreshed only when the ring
    /// looks full, so the steady-state push never loads a line the
    /// consumer writes.
    cached_head: usize,
}

impl<T> SpscSender<T> {
    /// The allocated ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Pushes one item, or hands it back if the ring is full.
    #[inline]
    pub fn try_send(&mut self, item: T) -> Result<(), T> {
        let tail = self.shared.tail.0.load(Relaxed); // own counter
        if tail.wrapping_sub(self.cached_head) > self.shared.mask {
            self.cached_head = self.shared.head.0.load(Acquire);
            if tail.wrapping_sub(self.cached_head) > self.shared.mask {
                return Err(item);
            }
        }
        // SAFETY: [cached_head, tail] spans less than the capacity, so
        // slot `tail` is free: the consumer will not read it until the
        // Release store below, and we are the only producer.
        unsafe { (*self.shared.buf[tail & self.shared.mask].get()).write(item) };
        self.shared.tail.0.store(tail.wrapping_add(1), Release);
        Ok(())
    }

    /// Pushes items from `items` until the ring is full or the iterator
    /// ends, publishing them all with **one** `Release` store — the
    /// batch amortisation of the protocol. Returns how many were sent.
    pub fn send_batch(&mut self, items: &mut impl Iterator<Item = T>) -> usize {
        let tail = self.shared.tail.0.load(Relaxed);
        self.cached_head = self.shared.head.0.load(Acquire);
        let free = self.capacity() - tail.wrapping_sub(self.cached_head);
        let mut sent = 0;
        while sent < free {
            let Some(item) = items.next() else { break };
            let slot = tail.wrapping_add(sent);
            // SAFETY: `slot` lies in the free region computed above.
            unsafe { (*self.shared.buf[slot & self.shared.mask].get()).write(item) };
            sent += 1;
        }
        if sent > 0 {
            self.shared.tail.0.store(tail.wrapping_add(sent), Release);
        }
        sent
    }

    /// Marks the stream finished. The consumer drains the remaining
    /// items, then observes [`TryRecvError::Disconnected`]. Dropping
    /// the sender closes implicitly.
    pub fn close(&mut self) {
        self.shared.closed.store(true, Release);
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> std::fmt::Debug for SpscSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscSender").field("capacity", &self.capacity()).finish()
    }
}

/// The consuming endpoint of an [`spsc`] ring.
pub struct SpscReceiver<T> {
    shared: Arc<SpscShared<T>>,
    /// Local copy of the producer's tail — refreshed only when the ring
    /// looks empty (mirror of the sender's cached head).
    cached_tail: usize,
}

impl<T> SpscReceiver<T> {
    /// The allocated ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    #[inline]
    fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.0.load(Relaxed); // own counter
        if head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: head < cached_tail, so slot `head` was published by
        // the producer's Release store and is ours to take.
        let item = unsafe { (*self.shared.buf[head & self.shared.mask].get()).assume_init_read() };
        self.shared.head.0.store(head.wrapping_add(1), Release);
        Some(item)
    }

    /// Pops one item; distinguishes a momentarily-empty ring from a
    /// closed-and-drained one (the close/re-poll protocol from the
    /// module docs).
    #[inline]
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        if let Some(item) = self.pop() {
            return Ok(item);
        }
        if !self.shared.closed.load(Acquire) {
            return Err(TryRecvError::Empty);
        }
        // The producer closed *after* its last publish: one more poll
        // (which re-reads `tail` with Acquire) sees anything we raced.
        self.pop().ok_or(TryRecvError::Disconnected)
    }

    /// Pops up to `max` items into `out`, consuming them all under
    /// **one** `Release` store of the head. Returns how many arrived.
    pub fn recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.shared.head.0.load(Relaxed);
        self.cached_tail = self.shared.tail.0.load(Acquire);
        let available = self.cached_tail.wrapping_sub(head).min(max);
        for i in 0..available {
            // SAFETY: the whole range [head, head+available) is below
            // the Acquire-loaded tail.
            let item = unsafe {
                (*self.shared.buf[head.wrapping_add(i) & self.shared.mask].get())
                    .assume_init_read()
            };
            out.push(item);
        }
        if available > 0 {
            self.shared.head.0.store(head.wrapping_add(available), Release);
        }
        available
    }
}

impl<T> std::fmt::Debug for SpscReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscReceiver").field("capacity", &self.capacity()).finish()
    }
}

// ---------------------------------------------------------------------
// MPSC
// ---------------------------------------------------------------------

/// One slot of the MPSC ring: the sequence counter is the per-slot
/// publication protocol (see the module docs).
struct MpscSlot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Shared state of one MPSC ring.
struct MpscShared<T> {
    buf: Box<[MpscSlot<T>]>,
    mask: usize,
    /// Next enqueue position; producers claim slots by CAS here.
    enqueue: CachePadded<AtomicUsize>,
    /// Next dequeue position; written by the single consumer only.
    dequeue: CachePadded<AtomicUsize>,
    /// Live sender handles; 0 = disconnected.
    senders: AtomicUsize,
}

// SAFETY: as for SPSC — values cross threads only through the slot
// sequence protocol, which orders the value write before the read.
unsafe impl<T: Send> Send for MpscShared<T> {}
unsafe impl<T: Send> Sync for MpscShared<T> {}

impl<T> Drop for MpscShared<T> {
    fn drop(&mut self) {
        let mut pos = self.dequeue.0.load(Relaxed);
        // Drain every published-but-unconsumed slot. Claimed-but-never-
        // published slots cannot exist here: a producer publishes before
        // releasing its sender handle.
        while self.buf[pos & self.mask].seq.load(Relaxed) == pos.wrapping_add(1) {
            // SAFETY: sequence pos+1 marks a published, unread value.
            unsafe { (*self.buf[pos & self.mask].value.get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Creates a bounded multi-producer single-consumer ring holding at
/// least `capacity` items (rounded up to a power of two, minimum 2).
///
/// Clone the sender once per producing thread; the single receiver
/// observes [`TryRecvError::Disconnected`] once every sender has been
/// dropped and the ring is drained.
pub fn mpsc<T: Send>(capacity: usize) -> (MpscSender<T>, MpscReceiver<T>) {
    let cap = ring_capacity(capacity);
    let buf = (0..cap)
        .map(|i| MpscSlot { seq: AtomicUsize::new(i), value: UnsafeCell::new(MaybeUninit::uninit()) })
        .collect();
    let shared = Arc::new(MpscShared {
        buf,
        mask: cap - 1,
        enqueue: CachePadded(AtomicUsize::new(0)),
        dequeue: CachePadded(AtomicUsize::new(0)),
        senders: AtomicUsize::new(1),
    });
    (MpscSender { shared: Arc::clone(&shared) }, MpscReceiver { shared })
}

/// A producing endpoint of an [`mpsc`] ring; clone one per producer.
pub struct MpscSender<T> {
    shared: Arc<MpscShared<T>>,
}

impl<T> MpscSender<T> {
    /// The allocated ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Pushes one item, or hands it back if the ring is full.
    pub fn try_send(&self, item: T) -> Result<(), T> {
        loop {
            let pos = self.shared.enqueue.0.load(Relaxed);
            let slot = &self.shared.buf[pos & self.shared.mask];
            let seq = slot.seq.load(Acquire);
            if seq == pos {
                // Free slot: claim it. The CAS needs atomicity only —
                // the ordering that matters is the sequence publish.
                if self
                    .shared
                    .enqueue
                    .0
                    .compare_exchange_weak(pos, pos.wrapping_add(1), Relaxed, Relaxed)
                    .is_ok()
                {
                    // SAFETY: the successful CAS makes this thread the
                    // unique claimant of slot `pos`.
                    unsafe { (*slot.value.get()).write(item) };
                    slot.seq.store(pos.wrapping_add(1), Release);
                    return Ok(());
                }
                // Lost the claim race; retry at the new position.
            } else if seq < pos {
                // The slot still holds an element a full lap behind:
                // the ring is full.
                return Err(item);
            }
            // seq > pos: another producer advanced past us between the
            // two loads; retry.
        }
    }
}

impl<T> Clone for MpscSender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Relaxed);
        MpscSender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for MpscSender<T> {
    fn drop(&mut self) {
        self.shared.senders.fetch_sub(1, Release);
    }
}

impl<T> std::fmt::Debug for MpscSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscSender").field("capacity", &self.capacity()).finish()
    }
}

/// The consuming endpoint of an [`mpsc`] ring.
pub struct MpscReceiver<T> {
    shared: Arc<MpscShared<T>>,
}

// SAFETY: the receiver is a handle to the shared ring; moving it moves
// only the consumer role.
unsafe impl<T: Send> Send for MpscReceiver<T> {}

impl<T> MpscReceiver<T> {
    /// The allocated ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    #[inline]
    fn pop(&mut self) -> Option<T> {
        let pos = self.shared.dequeue.0.load(Relaxed); // own counter
        let slot = &self.shared.buf[pos & self.shared.mask];
        if slot.seq.load(Acquire) != pos.wrapping_add(1) {
            return None; // empty, or a producer is mid-publish
        }
        // SAFETY: sequence pos+1 marks slot `pos` published and unread,
        // and we are the only consumer.
        let item = unsafe { (*slot.value.get()).assume_init_read() };
        // Hand the slot back one lap ahead.
        slot.seq.store(pos.wrapping_add(self.shared.mask + 1), Release);
        self.shared.dequeue.0.store(pos.wrapping_add(1), Relaxed);
        Some(item)
    }

    /// Pops one item; distinguishes a momentarily-empty ring from one
    /// whose every sender has disconnected after draining.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        if let Some(item) = self.pop() {
            return Ok(item);
        }
        if self.shared.senders.load(Acquire) > 0 {
            return Err(TryRecvError::Empty);
        }
        // Senders all released *after* their last publish: one more
        // poll observes anything we raced (same argument as SPSC).
        self.pop().ok_or(TryRecvError::Disconnected)
    }
}

impl<T> std::fmt::Debug for MpscReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscReceiver").field("capacity", &self.capacity()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_round_up_to_powers_of_two() {
        let (tx, rx) = spsc::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        assert_eq!(rx.capacity(), 4);
        let (tx, rx) = mpsc::<u8>(0);
        assert_eq!(tx.capacity(), 2);
        assert_eq!(rx.capacity(), 2);
    }

    #[test]
    fn spsc_single_thread_order_and_backpressure() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.try_send(99), Err(99), "full ring refuses");
        assert_eq!(rx.try_recv(), Ok(0));
        tx.try_send(4).unwrap(); // freed slot is reusable
        for want in 1..=4 {
            assert_eq!(rx.try_recv(), Ok(want));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.close();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn spsc_batch_operations_move_everything() {
        let (mut tx, mut rx) = spsc::<usize>(8);
        let mut items = 0..20usize;
        assert_eq!(tx.send_batch(&mut items), 8, "fills to capacity");
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(tx.send_batch(&mut items), 3, "refills the freed slots");
        assert_eq!(rx.recv_batch(&mut out, usize::MAX), 8);
        assert_eq!(out, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn spsc_drop_releases_undrained_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Noisy;
        impl Drop for Noisy {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = spsc::<Noisy>(4);
        for _ in 0..3 {
            tx.try_send(Noisy).unwrap();
        }
        drop(rx.try_recv().unwrap()); // one consumed
        drop((tx, rx));
        assert_eq!(DROPS.load(Ordering::Relaxed), 3, "2 in-flight + 1 consumed");
    }

    #[test]
    fn spsc_cross_thread_stress_preserves_every_item() {
        // A producer pushes 10^6 sequenced items through a small ring;
        // the consumer verifies order, count and checksum — any lost,
        // duplicated or torn item breaks one of the three.
        const ITEMS: u64 = 1_000_000;
        let (mut tx, mut rx) = spsc::<u64>(256);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < ITEMS {
                match tx.try_send(next) {
                    Ok(()) => next += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let (mut count, mut sum, mut expect) = (0u64, 0u64, 0u64);
        let mut buf = Vec::with_capacity(64);
        loop {
            buf.clear();
            if rx.recv_batch(&mut buf, 64) == 0 {
                match rx.try_recv() {
                    Ok(v) => buf.push(v),
                    Err(TryRecvError::Empty) => {
                        std::thread::yield_now();
                        continue;
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            for &v in &buf {
                assert_eq!(v, expect, "reordered or duplicated item");
                expect += 1;
                count += 1;
                sum = sum.wrapping_add(v);
            }
        }
        producer.join().unwrap();
        assert_eq!(count, ITEMS);
        assert_eq!(sum, (0..ITEMS).fold(0u64, u64::wrapping_add));
    }

    #[test]
    fn mpsc_single_thread_fills_and_disconnects() {
        let (tx, mut rx) = mpsc::<u32>(4);
        let tx2 = tx.clone();
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx2.try_send(9), Err(9), "full ring refuses");
        assert_eq!(rx.try_recv(), Ok(0));
        tx2.try_send(4).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx2);
        for want in 2..=4 {
            assert_eq!(rx.try_recv(), Ok(want));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpsc_multi_producer_stress_preserves_every_item() {
        // 4 producers × 250k items through a small ring: per-producer
        // streams must stay ordered, and the union must be exact.
        const PER: u64 = 250_000;
        const PRODUCERS: u64 = 4;
        let (tx, mut rx) = mpsc::<(u64, u64)>(128);
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let mut item = (p, i);
                        while let Err(back) = tx.try_send(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next = [0u64; PRODUCERS as usize];
        let mut total = 0u64;
        loop {
            match rx.try_recv() {
                Ok((p, i)) => {
                    assert_eq!(i, next[p as usize], "producer {p} stream reordered");
                    next[p as usize] += 1;
                    total += 1;
                }
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => break,
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total, PER * PRODUCERS);
        assert!(next.iter().all(|&n| n == PER));
    }

    #[test]
    fn mpsc_drop_releases_undrained_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Noisy;
        impl Drop for Noisy {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = mpsc::<Noisy>(8);
        for _ in 0..5 {
            tx.try_send(Noisy).unwrap();
        }
        drop((tx, rx));
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn hot_counters_sit_on_their_own_cache_lines() {
        assert_eq!(core::mem::align_of::<CachePadded<AtomicUsize>>(), 64);
        assert_eq!(core::mem::size_of::<CachePadded<AtomicUsize>>(), 64);
    }
}
