//! Per-neighbor clue-source reputation and hysteresis quarantine.
//!
//! The soundness invariant (see [`crate::check_soundness`]) makes a
//! hostile neighbor's worst case *bounded* — a bad clue costs at most
//! one wasted probe — but bounded is not free: a neighbor that lies on
//! every packet taxes every lookup on its link. This module closes the
//! loop the paper leaves open: the degradation signals the chaos
//! harness already measures (malformed decodes, degraded-cost overruns
//! versus the clue-less baseline) feed a per-neighbor **score**, and a
//! hysteresis state machine turns a collapsed score into a
//! **quarantine** — the neighbor's incoming-link engine is bypassed and
//! its packets served clue-less, which removes the probe tax entirely.
//!
//! The state machine is deliberately batch-grained. Serving workers
//! only consult reputation at batch boundaries (the same boundaries
//! where they re-pin epochs, see [`crate::EpochCell`]), so the lock-free
//! hot path stays untouched: quarantining a link costs one relaxed
//! atomic load per *batch*, not per packet.
//!
//! States and transitions:
//!
//! ```text
//!            dirty batches drive score below `quarantine_below`
//!   Healthy ───────────────────────────────────────────────▶ Quarantined
//!      ▲                                                        │
//!      │  `probation_batches` clean batches                     │ hold-down:
//!      │  AND score ≥ `readmit_above`                           │ `quarantine_batches`
//!      │                                                        ▼
//!      └──────────────────────────────────────────────────  Probation
//!                   (any dirty probation batch re-quarantines instantly)
//! ```
//!
//! Three properties the tests pin:
//!
//! * **Monotone under attack** — while every clue-carrying batch is
//!   dirty, the score never increases (quarantined batches carry no
//!   clue evidence and *hold* the score rather than recovering it), so
//!   a sustained liar cannot ride the recovery term back to health.
//! * **Hysteresis** — the quarantine entry threshold
//!   (`quarantine_below`) is far below the re-admission threshold
//!   (`readmit_above`), so a borderline score cannot flap, and an
//!   **oscillating** liar that alternates honest and hostile epochs
//!   keeps losing score on hostile epochs faster than it regains it on
//!   honest ones.
//! * **Probation** — re-admission is probed, not granted: the link's
//!   clues are consulted again (risk bounded by soundness), and one
//!   dirty batch sends the neighbor straight back to quarantine.

use std::sync::atomic::{AtomicBool, Ordering};

/// Tuning of the reputation state machine. The defaults are sized for
/// the fleet simulator's round-grained batches; every threshold is a
/// fraction of a batch's clued lookups, so they transfer across batch
/// sizes.
#[derive(Debug, Clone, Copy)]
pub struct ReputationConfig {
    /// Dirty-batch threshold: a batch whose signal fraction
    /// (malformed + overruns per clued lookup) exceeds this is
    /// evidence of hostility. Sits above the honest noise floor —
    /// stale clues and genuine misses stay well under 2%.
    pub suspicion: f64,
    /// Multiplicative decay on a dirty batch:
    /// `score *= 1 - attack_decay * fraction`.
    pub attack_decay: f64,
    /// Recovery pull toward 1.0 on a clean clue-carrying batch:
    /// `score += recovery * (1 - score)`.
    pub recovery: f64,
    /// A Healthy neighbor whose score falls below this is quarantined.
    pub quarantine_below: f64,
    /// Probation re-admits only once the score has recovered past
    /// this (strictly above `quarantine_below` — the hysteresis gap).
    pub readmit_above: f64,
    /// Hold-down: batches a quarantined link serves clue-less before
    /// probation begins.
    pub quarantine_batches: u64,
    /// Consecutive clean probation batches required (in addition to
    /// the score gate) before re-admission.
    pub probation_batches: u64,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            suspicion: 0.02,
            attack_decay: 0.5,
            recovery: 0.35,
            quarantine_below: 0.5,
            readmit_above: 0.9,
            quarantine_batches: 4,
            probation_batches: 2,
        }
    }
}

/// Where a neighbor stands in the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Clues are trusted and used.
    Healthy,
    /// Clues are bypassed; the link serves clue-less for the
    /// remaining hold-down batches.
    Quarantined {
        /// Hold-down batches left before probation.
        remaining: u64,
    },
    /// Clues are consulted again, under watch: `clean` consecutive
    /// clean batches so far.
    Probation {
        /// Consecutive clean batches observed in this probation.
        clean: u64,
    },
}

/// One batch's worth of degradation evidence for a single neighbor —
/// the aggregation the serving side already computes per batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSignals {
    /// Clued lookups served over the link this batch.
    pub lookups: u64,
    /// Lookups whose clue was not a prefix of the destination
    /// (the malformed-decode fallback path).
    pub malformed: u64,
    /// Lookups whose cost exceeded the clue-less baseline — the
    /// degraded-cost overrun the soundness checker prices.
    pub overruns: u64,
}

impl BatchSignals {
    /// A clean batch of `lookups` lookups.
    pub fn clean(lookups: u64) -> Self {
        BatchSignals { lookups, malformed: 0, overruns: 0 }
    }

    /// The dirty fraction of the batch (0.0 for an empty batch).
    pub fn fraction(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.malformed + self.overruns) as f64 / self.lookups as f64
        }
    }
}

/// What one [`NeighborReputation::observe`] call did to the state
/// machine — the edge, for telemetry and scenario assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// The neighbor entered quarantine (from Healthy or Probation).
    Quarantined,
    /// The hold-down expired; probation began.
    Probation,
    /// Probation succeeded; the neighbor is Healthy again.
    Readmitted,
}

/// One neighbor's score and quarantine state.
#[derive(Debug, Clone, Copy)]
pub struct NeighborReputation {
    score: f64,
    state: LinkState,
    batches: u64,
}

impl Default for NeighborReputation {
    fn default() -> Self {
        NeighborReputation { score: 1.0, state: LinkState::Healthy, batches: 0 }
    }
}

impl NeighborReputation {
    /// The current score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Batches observed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Whether the serving side should consult this neighbor's clues
    /// for the *next* batch (Healthy and Probation do; Quarantined
    /// serves clue-less).
    pub fn uses_clues(&self) -> bool {
        !matches!(self.state, LinkState::Quarantined { .. })
    }

    /// Folds one batch of evidence into the score and state machine.
    ///
    /// Quarantined batches are an evidence blackout: the link served
    /// clue-less, so `signals` carries no clue information — the score
    /// holds (no recovery a liar could exploit) and only the hold-down
    /// ticks.
    pub fn observe(&mut self, signals: &BatchSignals, config: &ReputationConfig) -> Transition {
        self.batches += 1;
        match self.state {
            LinkState::Quarantined { remaining } => {
                if remaining <= 1 {
                    self.state = LinkState::Probation { clean: 0 };
                    Transition::Probation
                } else {
                    self.state = LinkState::Quarantined { remaining: remaining - 1 };
                    Transition::None
                }
            }
            LinkState::Healthy | LinkState::Probation { .. } => {
                let fraction = signals.fraction();
                if fraction > config.suspicion {
                    self.score *= 1.0 - config.attack_decay * fraction.min(1.0);
                    let quarantine = match self.state {
                        // One dirty probation batch re-quarantines
                        // instantly — probation is a probe, not a pardon.
                        LinkState::Probation { .. } => true,
                        _ => self.score < config.quarantine_below,
                    };
                    if quarantine {
                        self.state = LinkState::Quarantined {
                            remaining: config.quarantine_batches.max(1),
                        };
                        Transition::Quarantined
                    } else {
                        Transition::None
                    }
                } else {
                    self.score += config.recovery * (1.0 - self.score);
                    if let LinkState::Probation { clean } = self.state {
                        let clean = clean + 1;
                        if clean >= config.probation_batches && self.score >= config.readmit_above
                        {
                            self.state = LinkState::Healthy;
                            Transition::Readmitted
                        } else {
                            self.state = LinkState::Probation { clean };
                            Transition::None
                        }
                    } else {
                        Transition::None
                    }
                }
            }
        }
    }
}

/// The per-neighbor reputation ledger a router (or the fleet
/// simulator) keeps: one [`NeighborReputation`] per incoming link,
/// plus transition counters for telemetry.
#[derive(Debug, Clone)]
pub struct ReputationBook {
    config: ReputationConfig,
    neighbors: Vec<NeighborReputation>,
    quarantines: u64,
    probations: u64,
    readmissions: u64,
}

impl ReputationBook {
    /// A book over `neighbors` links, all Healthy at score 1.0.
    pub fn new(neighbors: usize, config: ReputationConfig) -> Self {
        ReputationBook {
            config,
            neighbors: vec![NeighborReputation::default(); neighbors],
            quarantines: 0,
            probations: 0,
            readmissions: 0,
        }
    }

    /// Links tracked.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the book tracks no links.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The configuration the book applies.
    pub fn config(&self) -> &ReputationConfig {
        &self.config
    }

    /// The reputation of link `i`.
    pub fn neighbor(&self, i: usize) -> &NeighborReputation {
        &self.neighbors[i]
    }

    /// Folds one batch of evidence for link `i`.
    pub fn observe(&mut self, i: usize, signals: &BatchSignals) -> Transition {
        let t = self.neighbors[i].observe(signals, &self.config);
        match t {
            Transition::Quarantined => self.quarantines += 1,
            Transition::Probation => self.probations += 1,
            Transition::Readmitted => self.readmissions += 1,
            Transition::None => {}
        }
        t
    }

    /// Whether link `i`'s clues should be consulted next batch.
    pub fn uses_clues(&self, i: usize) -> bool {
        self.neighbors[i].uses_clues()
    }

    /// Links currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.neighbors.iter().filter(|n| !n.uses_clues()).count()
    }

    /// The lowest score across all links (1.0 for an empty book).
    pub fn min_score(&self) -> f64 {
        self.neighbors.iter().map(|n| n.score()).fold(1.0, f64::min)
    }

    /// Quarantine transitions since construction.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Probation transitions since construction.
    pub fn probations(&self) -> u64 {
        self.probations
    }

    /// Re-admissions since construction.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }
}

/// A one-bit quarantine switch shared between a reputation controller
/// and a serving loop ([`serve_lookups`](../clue_netsim/fn.serve_lookups.html)-style
/// runtimes poll it once per batch): engaged means "serve this link
/// clue-less". The hot path never sees it — workers read it at batch
/// boundaries only, alongside their epoch re-pin.
#[derive(Debug, Default)]
pub struct QuarantineGate(AtomicBool);

impl QuarantineGate {
    /// A lifted (clue-serving) gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engage the quarantine: subsequent batches serve clue-less.
    pub fn engage(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Lift the quarantine: subsequent batches consult clues again.
    pub fn lift(&self) {
        self.0.store(false, Ordering::Relaxed);
    }

    /// Set the gate from a reputation decision (`true` = quarantined).
    pub fn set(&self, engaged: bool) {
        self.0.store(engaged, Ordering::Relaxed);
    }

    /// Whether the quarantine is engaged (one relaxed load — the
    /// per-batch price of the whole mechanism).
    pub fn is_engaged(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty(lookups: u64) -> BatchSignals {
        BatchSignals { lookups, malformed: lookups / 2, overruns: lookups / 2 }
    }

    #[test]
    fn sustained_lying_quarantines_and_never_readmits() {
        let config = ReputationConfig::default();
        let mut n = NeighborReputation::default();
        let mut quarantined_at = None;
        let mut last_score = n.score();
        for batch in 0..64u64 {
            let t = n.observe(&dirty(100), &config);
            assert!(n.score() <= last_score, "score recovered under sustained attack");
            last_score = n.score();
            if t == Transition::Quarantined && quarantined_at.is_none() {
                quarantined_at = Some(batch);
            }
            assert_ne!(t, Transition::Readmitted, "a sustained liar must never be readmitted");
            if quarantined_at.is_some() {
                assert_ne!(n.state(), LinkState::Healthy, "no return to Healthy under attack");
            }
        }
        let at = quarantined_at.expect("a fully dirty stream must trip quarantine");
        assert!(at <= 3, "quarantine should engage within a few batches, got {at}");
    }

    #[test]
    fn honest_neighbor_round_trips_through_probation() {
        let config = ReputationConfig::default();
        let mut n = NeighborReputation::default();
        // A burst of lies drives the neighbor into quarantine...
        while n.uses_clues() {
            n.observe(&dirty(100), &config);
        }
        assert!(matches!(n.state(), LinkState::Quarantined { .. }));
        // ...then honesty earns the way back: hold-down, probation,
        // score recovery past the hysteresis gap, re-admission.
        let mut saw_probation = false;
        let mut readmitted_after = None;
        for batch in 0..32u64 {
            match n.observe(&BatchSignals::clean(100), &config) {
                Transition::Probation => saw_probation = true,
                Transition::Readmitted => {
                    readmitted_after = Some(batch);
                    break;
                }
                _ => {}
            }
        }
        assert!(saw_probation, "re-admission must pass through probation");
        assert!(readmitted_after.is_some(), "an honest neighbor must be readmitted");
        assert_eq!(n.state(), LinkState::Healthy);
        assert!(n.score() >= config.readmit_above);
    }

    #[test]
    fn dirty_probation_batch_requarantines_instantly() {
        let config = ReputationConfig::default();
        let mut n = NeighborReputation::default();
        while n.uses_clues() {
            n.observe(&dirty(100), &config);
        }
        // Ride out the hold-down.
        loop {
            if n.observe(&BatchSignals::clean(100), &config) == Transition::Probation {
                break;
            }
        }
        assert!(n.uses_clues(), "probation consults clues again");
        let t = n.observe(&dirty(100), &config);
        assert_eq!(t, Transition::Quarantined, "one dirty probation batch is enough");
        assert!(!n.uses_clues());
    }

    #[test]
    fn hysteresis_thresholds_leave_a_gap() {
        let config = ReputationConfig::default();
        assert!(config.readmit_above > config.quarantine_below + 0.1);
    }

    #[test]
    fn book_counts_transitions_and_quarantined_links() {
        let mut book = ReputationBook::new(3, ReputationConfig::default());
        assert_eq!(book.len(), 3);
        assert_eq!(book.quarantined(), 0);
        for _ in 0..8 {
            book.observe(1, &dirty(100));
            book.observe(0, &BatchSignals::clean(100));
        }
        assert!(book.uses_clues(0));
        assert!(!book.uses_clues(1), "the lying link is quarantined");
        assert!(book.uses_clues(2), "an idle link stays healthy");
        assert_eq!(book.quarantined(), 1);
        // The liar is quarantined at least once; a dirty probation
        // batch after the hold-down re-quarantines, so more is fine.
        assert!(book.quarantines() >= 1);
        assert!(book.min_score() < 0.5);
        assert_eq!(book.neighbor(0).score(), 1.0);
    }

    #[test]
    fn empty_batches_are_not_evidence() {
        let config = ReputationConfig::default();
        let mut n = NeighborReputation::default();
        let score = n.score();
        n.observe(&BatchSignals::default(), &config);
        assert_eq!(n.state(), LinkState::Healthy);
        assert!(n.score() >= score, "an idle batch must not punish");
    }

    #[test]
    fn gate_toggles() {
        let gate = QuarantineGate::new();
        assert!(!gate.is_engaged());
        gate.engage();
        assert!(gate.is_engaged());
        gate.lift();
        assert!(!gate.is_engaged());
        gate.set(true);
        assert!(gate.is_engaged());
    }
}
