//! Epoch-swapped snapshots: serve lookups *while* the table changes.
//!
//! The [`FrozenEngine`] of `frozen.rs` is a one-shot immutable
//! compilation — perfect for the hot path, useless under BGP churn,
//! because a router cannot stop forwarding while its FIB rebuilds.
//! This module supplies the missing RCU-style layer, with no external
//! dependencies:
//!
//! * [`EpochCell<T>`] — a generic atomic generation-swap cell. A
//!   single builder [`publish`](EpochCell::publish)es new values; any
//!   number of registered readers [`pin`](EpochReader::pin) the
//!   current value and use it lock-free for as long as the guard
//!   lives. Superseded values are *retired*, not freed, until every
//!   reader has provably moved past them (an epoch-counter grace
//!   period).
//! * [`EpochEngine<A>`] — the cell specialised to
//!   `FrozenEngine<A>`, with freeze-and-publish plumbing and
//!   [`ChurnTelemetry`] hooks (swap count, rebuild latency,
//!   reclamation).
//!
//! # Protocol
//!
//! The cell keeps a global epoch counter `E`, starting at 0 and
//! bumped by every publish, and one atomic *pin slot* per registered
//! reader (`u64::MAX` = quiescent). To pin, a reader
//!
//! 1. reads `E` and stores it into its slot (announcing "I may be
//!    using any snapshot of epoch ≥ this"), then
//! 2. loads the current snapshot pointer.
//!
//! To publish, the builder swaps the pointer to the new snapshot,
//! bumps `E`, and pushes the old snapshot onto a retire list tagged
//! with its own epoch. A retired snapshot of epoch `k` is freed only
//! when the minimum over all pin slots exceeds `k`.
//!
//! # Safety argument
//!
//! All protocol atomics use `SeqCst`, so every pin, swap and scan
//! falls in one total order. A reader that obtained the snapshot of
//! epoch `k` performed (pin-store → pointer-load) in that order, and
//! its pointer-load preceded the builder's swap that retired `k`.
//! Because the epoch counter is bumped *after* the swap, the value
//! the reader pinned was at most `k`; and because the pin-store
//! precedes the pointer-load, every later reclamation scan observes a
//! pin ≤ `k` and keeps the snapshot alive. Conversely a reader's
//! pinned epoch never exceeds the epoch of the snapshot it loads (the
//! counter trails the pointer), so freeing epochs strictly below the
//! minimum pin can never free a snapshot still in use. Guards borrow
//! their reader mutably, so a slot is never overwritten while a guard
//! is live, and readers deregister their slot on drop.
//!
//! This is the one module in `clue-core` that uses `unsafe` (the
//! retire list stores raw `Box` pointers so retirement is explicit
//! rather than refcounted); the crate root holds `deny(unsafe_code)`
//! and this file opts back in locally.

#![allow(unsafe_code)]

use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use clue_telemetry::ChurnTelemetry;
use clue_trie::Address;

use crate::engine::ClueEngine;
use crate::frozen::{FreezeError, FrozenEngine};

/// Pin-slot sentinel: the reader holds no snapshot.
const QUIESCENT: u64 = u64::MAX;

/// One published snapshot with its generation number.
struct Slot<T> {
    epoch: u64,
    value: T,
}

/// A registered reader's announcement cell.
struct ReaderSlot {
    pinned: AtomicU64,
}

/// A superseded snapshot awaiting its grace period.
struct Retired<T> {
    epoch: u64,
    ptr: *mut Slot<T>,
}

/// What one [`EpochCell::publish`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publication {
    /// The epoch of the snapshot just published.
    pub epoch: u64,
    /// Retired snapshots freed because their grace period had expired.
    pub reclaimed: usize,
    /// Retired snapshots still awaiting a grace period after this call.
    pub retired: usize,
}

/// An atomic generation-swap cell; see the module docs.
pub struct EpochCell<T> {
    current: AtomicPtr<Slot<T>>,
    /// Epoch of the current snapshot — bumped after each swap, so it
    /// trails the pointer by design (readers pin conservatively low).
    global: AtomicU64,
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    retired: Mutex<Vec<Retired<T>>>,
    /// Serialises publishers; the protocol assumes one builder at a
    /// time and this makes that assumption safe rather than trusted.
    publish_lock: Mutex<()>,
}

// SAFETY: the cell owns its slots exclusively (readers only obtain
// shared references under the pin protocol above), so sending the
// cell is sending `T` values (`T: Send`) and sharing it hands out
// `&T` across threads (`T: Sync`).
unsafe impl<T: Send> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell holding `initial` as the epoch-0 snapshot.
    pub fn new(initial: T) -> Self {
        let slot = Box::into_raw(Box::new(Slot { epoch: 0, value: initial }));
        EpochCell {
            current: AtomicPtr::new(slot),
            global: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            publish_lock: Mutex::new(()),
        }
    }

    /// The epoch of the freshest published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Registered readers.
    pub fn reader_count(&self) -> usize {
        self.readers.lock().expect("reader registry poisoned").len()
    }

    /// Superseded snapshots still awaiting their grace period.
    pub fn retired_count(&self) -> usize {
        self.retired.lock().expect("retire list poisoned").len()
    }

    /// Registers a reader. Readers are cheap; register one per thread
    /// and keep it — every [`pin`](EpochReader::pin) reuses its slot.
    pub fn reader(&self) -> EpochReader<'_, T> {
        let slot = Arc::new(ReaderSlot { pinned: AtomicU64::new(QUIESCENT) });
        self.readers.lock().expect("reader registry poisoned").push(Arc::clone(&slot));
        EpochReader { cell: self, slot }
    }

    /// Publishes `value` as the next snapshot, retires the previous
    /// one, and opportunistically frees any retired snapshot whose
    /// grace period has expired. Safe to call from any thread;
    /// publishers are serialised internally.
    pub fn publish(&self, value: T) -> Publication {
        let _guard = self.publish_lock.lock().expect("publish lock poisoned");
        let old_epoch = self.global.load(SeqCst);
        let epoch = old_epoch + 1;
        let fresh = Box::into_raw(Box::new(Slot { epoch, value }));
        let old = self.current.swap(fresh, SeqCst);
        self.global.store(epoch, SeqCst);
        let (reclaimed, retired) = {
            let mut retired = self.retired.lock().expect("retire list poisoned");
            retired.push(Retired { epoch: old_epoch, ptr: old });
            let freed = self.reclaim_locked(&mut retired);
            (freed, retired.len())
        };
        Publication { epoch, reclaimed, retired }
    }

    /// Frees every retired snapshot whose grace period has expired
    /// (no reader pin is at or below its epoch); returns how many.
    pub fn reclaim(&self) -> usize {
        let mut retired = self.retired.lock().expect("retire list poisoned");
        self.reclaim_locked(&mut retired)
    }

    fn min_pinned(&self) -> u64 {
        let readers = self.readers.lock().expect("reader registry poisoned");
        readers.iter().map(|r| r.pinned.load(SeqCst)).min().unwrap_or(QUIESCENT)
    }

    fn reclaim_locked(&self, retired: &mut Vec<Retired<T>>) -> usize {
        let min = self.min_pinned();
        let before = retired.len();
        retired.retain(|r| {
            if r.epoch < min {
                // SAFETY: `r.ptr` came from `Box::into_raw` in
                // `publish`, appears on the retire list exactly once,
                // and no reader can still hold it: every live guard's
                // pin is ≤ the epoch of the snapshot it dereferences,
                // so `r.epoch < min` means no guard points here.
                drop(unsafe { Box::from_raw(r.ptr) });
                false
            } else {
                true
            }
        });
        before - retired.len()
    }

    fn deregister(&self, slot: &Arc<ReaderSlot>) {
        let mut readers = self.readers.lock().expect("reader registry poisoned");
        if let Some(i) = readers.iter().position(|r| Arc::ptr_eq(r, slot)) {
            readers.swap_remove(i);
        }
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers or guards can exist (they borrow the
        // cell), so everything is reclaimable.
        let current = self.current.load(SeqCst);
        if !current.is_null() {
            // SAFETY: `current` always holds a live `Box::into_raw`
            // pointer and nothing else references it here.
            drop(unsafe { Box::from_raw(current) });
            self.current.store(ptr::null_mut(), SeqCst);
        }
        let mut retired = self.retired.lock().expect("retire list poisoned");
        for r in retired.drain(..) {
            // SAFETY: as in `reclaim_locked`; with no readers left,
            // every retired snapshot is unreferenced.
            drop(unsafe { Box::from_raw(r.ptr) });
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.current_epoch())
            .field("readers", &self.reader_count())
            .field("retired", &self.retired_count())
            .finish()
    }
}

/// A registered reader of an [`EpochCell`]. `Send` (move one into
/// each worker thread); pin to obtain a usable snapshot.
pub struct EpochReader<'c, T> {
    cell: &'c EpochCell<T>,
    slot: Arc<ReaderSlot>,
}

impl<T> EpochReader<'_, T> {
    /// Pins the current snapshot: announces this reader's epoch, then
    /// loads the pointer. The returned guard keeps the snapshot (and
    /// every later one) alive until dropped; the `&mut` receiver
    /// makes nested pins on one reader a compile error, so the slot
    /// always reflects the oldest snapshot this reader can touch.
    pub fn pin(&mut self) -> EpochGuard<'_, T> {
        let epoch = self.cell.global.load(SeqCst);
        self.slot.pinned.store(epoch, SeqCst);
        let ptr = self.cell.current.load(SeqCst);
        EpochGuard { cell: self.cell, slot: &self.slot, ptr }
    }

    /// The epoch of the freshest published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.cell.current_epoch()
    }
}

impl<T> Drop for EpochReader<'_, T> {
    fn drop(&mut self) {
        self.slot.pinned.store(QUIESCENT, SeqCst);
        self.cell.deregister(&self.slot);
    }
}

/// A pinned snapshot; derefs to the published value. Dropping the
/// guard quiesces the reader, re-arming reclamation.
pub struct EpochGuard<'r, T> {
    cell: &'r EpochCell<T>,
    slot: &'r ReaderSlot,
    ptr: *const Slot<T>,
}

impl<T> EpochGuard<'_, T> {
    fn slot_ref(&self) -> &Slot<T> {
        // SAFETY: `ptr` was the cell's current snapshot when this
        // guard pinned; the pin (≤ its epoch, see module docs) blocks
        // reclamation for as long as the guard lives.
        unsafe { &*self.ptr }
    }

    /// The epoch of the pinned snapshot.
    pub fn epoch(&self) -> u64 {
        self.slot_ref().epoch
    }

    /// How many publishes this snapshot is behind the freshest one
    /// (0 = current). This is the staleness a lookup served from this
    /// guard experiences.
    pub fn lag(&self) -> u64 {
        self.cell.current_epoch().saturating_sub(self.epoch())
    }
}

impl<T> Deref for EpochGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.slot_ref().value
    }
}

impl<T> Drop for EpochGuard<'_, T> {
    fn drop(&mut self) {
        self.slot.pinned.store(QUIESCENT, SeqCst);
    }
}

/// An [`EpochCell`] over [`FrozenEngine`] snapshots with the
/// freeze-and-publish plumbing a churn driver needs: the builder
/// thread calls [`publish_from`](Self::publish_from) after each
/// update batch, reader threads run `lookup_batch` on pinned guards.
pub struct EpochEngine<A: Address> {
    cell: EpochCell<FrozenEngine<A>>,
    telemetry: Option<ChurnTelemetry>,
}

impl<A: Address> EpochEngine<A> {
    /// Freezes `engine` as the epoch-0 snapshot.
    pub fn new(engine: &ClueEngine<A>) -> Result<Self, FreezeError> {
        Ok(Self::from_frozen(engine.freeze()?))
    }

    /// Wraps an already-frozen snapshot as epoch 0.
    pub fn from_frozen(frozen: FrozenEngine<A>) -> Self {
        EpochEngine { cell: EpochCell::new(frozen), telemetry: None }
    }

    /// Attaches a churn telemetry bundle; every later publish records
    /// the swap, its rebuild latency and any reclamation into it.
    pub fn attach_telemetry(&mut self, telemetry: ChurnTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&ChurnTelemetry> {
        self.telemetry.as_ref()
    }

    /// Re-freezes `engine` and publishes the snapshot, timing the
    /// whole rebuild (freeze + swap) as the published epoch's rebuild
    /// latency. Returns the new epoch.
    pub fn publish_from(&self, engine: &ClueEngine<A>) -> Result<u64, FreezeError> {
        let started = Instant::now();
        let frozen = engine.freeze()?;
        let publication = self.cell.publish(frozen);
        if let Some(t) = &self.telemetry {
            t.swaps_total.inc();
            t.rebuild_latency_us.observe(started.elapsed().as_micros() as u64);
            t.reclaimed_total.add(publication.reclaimed as u64);
        }
        Ok(publication.epoch)
    }

    /// Publishes an externally-built snapshot (no freeze timing).
    pub fn publish(&self, frozen: FrozenEngine<A>) -> Publication {
        let publication = self.cell.publish(frozen);
        if let Some(t) = &self.telemetry {
            t.swaps_total.inc();
            t.reclaimed_total.add(publication.reclaimed as u64);
        }
        publication
    }

    /// Registers a reader; see [`EpochCell::reader`].
    pub fn reader(&self) -> EpochReader<'_, FrozenEngine<A>> {
        self.cell.reader()
    }

    /// The epoch of the freshest published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.cell.current_epoch()
    }

    /// Superseded snapshots still awaiting their grace period.
    pub fn retired_count(&self) -> usize {
        self.cell.retired_count()
    }

    /// Frees expired retired snapshots; returns how many.
    pub fn reclaim(&self) -> usize {
        let freed = self.cell.reclaim();
        if let Some(t) = &self.telemetry {
            t.reclaimed_total.add(freed as u64);
        }
        freed
    }
}

impl<A: Address> std::fmt::Debug for EpochEngine<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochEngine")
            .field("epoch", &self.current_epoch())
            .field("retired", &self.retired_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Method};
    use clue_lookup::Family;
    use clue_trie::{Cost, Ip4, Prefix};

    #[test]
    fn pin_sees_the_latest_snapshot() {
        let cell = EpochCell::new(10u64);
        let mut reader = cell.reader();
        assert_eq!(*reader.pin(), 10);
        assert_eq!(reader.pin().epoch(), 0);
        cell.publish(20);
        let guard = reader.pin();
        assert_eq!(*guard, 20);
        assert_eq!(guard.epoch(), 1);
        assert_eq!(guard.lag(), 0);
    }

    #[test]
    fn guards_keep_superseded_snapshots_alive() {
        let cell = EpochCell::new(vec![0u64; 4]);
        let mut reader = cell.reader();
        let guard = reader.pin();
        let p = cell.publish(vec![1; 4]);
        assert_eq!(p.epoch, 1);
        assert_eq!(p.reclaimed, 0, "epoch 0 is pinned");
        assert_eq!(cell.retired_count(), 1);
        // The pinned guard still reads the old value, and knows it lags.
        assert_eq!(*guard, vec![0; 4]);
        assert_eq!(guard.lag(), 1);
        drop(guard);
        assert_eq!(cell.reclaim(), 1, "grace period over once unpinned");
        assert_eq!(cell.retired_count(), 0);
    }

    #[test]
    fn publish_reclaims_opportunistically() {
        let cell = EpochCell::new(0u64);
        for i in 1..=5 {
            let p = cell.publish(i);
            assert_eq!(p.epoch, i);
        }
        // No readers registered: every publish frees the snapshot it
        // retires on the spot.
        assert_eq!(cell.retired_count(), 0);
    }

    #[test]
    fn readers_register_and_deregister() {
        let cell = EpochCell::new(0u64);
        assert_eq!(cell.reader_count(), 0);
        let r1 = cell.reader();
        let r2 = cell.reader();
        assert_eq!(cell.reader_count(), 2);
        drop(r1);
        assert_eq!(cell.reader_count(), 1);
        drop(r2);
        assert_eq!(cell.reader_count(), 0);
    }

    #[test]
    fn a_quiescent_reader_does_not_block_reclamation() {
        let cell = EpochCell::new(0u64);
        let mut reader = cell.reader();
        drop(reader.pin()); // pin and immediately quiesce
        cell.publish(1);
        assert_eq!(cell.retired_count(), 0, "no live guard, freed at publish");
    }

    #[test]
    fn concurrent_readers_only_see_consistent_snapshots() {
        // Each snapshot is `vec![epoch; 8]` — a reader observing a
        // torn or freed value would see mixed elements or garbage.
        const PUBLISHES: u64 = 200;
        const READERS: usize = 4;
        let cell = EpochCell::new(vec![0u64; 8]);
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let mut reader = cell.reader();
                scope.spawn(move || {
                    let mut last_seen = 0;
                    loop {
                        let guard = reader.pin();
                        let epoch = guard.epoch();
                        assert!(guard.iter().all(|&v| v == epoch), "torn snapshot");
                        assert!(epoch >= last_seen, "epochs move forward");
                        assert!(guard.lag() <= PUBLISHES, "lag bounded by history");
                        last_seen = epoch;
                        drop(guard);
                        if epoch == PUBLISHES {
                            break;
                        }
                    }
                });
            }
            for e in 1..=PUBLISHES {
                cell.publish(vec![e; 8]);
            }
        });
        assert_eq!(cell.current_epoch(), PUBLISHES);
        // All readers gone: everything retired is reclaimable.
        cell.reclaim();
        assert_eq!(cell.retired_count(), 0);
    }

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    #[test]
    fn epoch_engine_publishes_refrozen_snapshots() {
        let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
        let receiver = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
        let mut live = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let mut epochs = EpochEngine::new(&live).unwrap();
        epochs.attach_telemetry(ChurnTelemetry::detached());

        let dest: Ip4 = "10.1.2.3".parse().unwrap();
        let clue = Some(p("10.1.0.0/16"));
        let mut reader = epochs.reader();
        let mut cost = Cost::new();
        let (bmp, _) = reader.pin().lookup(dest, clue, &mut cost);
        assert_eq!(bmp, Some(p("10.1.0.0/16")));

        live.add_receiver_route(p("10.1.2.0/24"));
        let epoch = epochs.publish_from(&live).unwrap();
        assert_eq!(epoch, 1);
        let mut cost = Cost::new();
        let (bmp, _) = reader.pin().lookup(dest, clue, &mut cost);
        assert_eq!(bmp, Some(p("10.1.2.0/24")), "re-pin sees the new route");

        let t = epochs.telemetry().unwrap();
        assert_eq!(t.swaps_total.get(), 1);
        assert_eq!(t.rebuild_latency_us.count(), 1);
    }
}
