//! The clue table: the per-neighbor structure a receiving router consults
//! once per packet (Sections 3.2–3.3 of the paper).
//!
//! Each entry holds the paper's two fields:
//!
//! * **FD** (final decision) — the BMP of the clue string in this router's
//!   trie, used directly when no continued search is needed (`Ptr` empty)
//!   or as the fallback when a continued search fails;
//! * **Ptr** — here a [`Continuation`]: where and how to resume the
//!   lookup. The paper stores a trie pointer; when the engine runs the
//!   Binary/B-way/Log W families the continuation instead holds the
//!   precomputed candidate set `P(s)` of Section 4.
//!
//! The table itself comes in the two flavours of Section 3.3.1:
//!
//! * **Hashed** — keyed by the clue string, one hash probe per consult;
//! * **Indexed** — the sender enumerates its clues and stamps a 16-bit
//!   index on each packet; the receiver reads the slot directly (no hash
//!   function), verifying the stored clue against the received one (a
//!   one-instruction check the paper treats as free). A mismatch means
//!   the slot is stale and is overwritten by the learner.

use std::collections::HashMap;

use clue_lookup::{LengthBinarySearch, RangeIndex, SNodeId};
use clue_trie::{Address, Cost, Location, NodeId, Prefix};

use crate::fxhash::FxHashMap;

/// How the clue table is addressed (Section 3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// Keyed by the clue string through a hash function (5 header bits).
    Hashed,
    /// Directly indexed by a sender-assigned 16-bit index (21 header
    /// bits, no hash function).
    Indexed,
}

/// The candidate set of a problematic clue, organised for the
/// binary/B-way continuation of Section 4.
///
/// When the set fits in the clue entry's cache line (the paper's SDRAM
/// observation), scanning it costs **no** extra memory access — the line
/// arrived with the entry. Larger sets get a [`RangeIndex`] searched with
/// counted probes.
#[derive(Debug, Clone)]
pub struct CandidateRange<A: Address> {
    inline: Vec<Prefix<A>>,
    index: Option<RangeIndex<A>>,
}

impl<A: Address> CandidateRange<A> {
    /// Builds from the (sorted) candidate set; sets of at most
    /// `line_capacity` prefixes are kept in line.
    pub fn new(candidates: Vec<Prefix<A>>, line_capacity: usize) -> Self {
        if candidates.len() <= line_capacity {
            CandidateRange { inline: candidates, index: None }
        } else {
            let index = RangeIndex::new(candidates.iter().copied());
            CandidateRange { inline: candidates, index: Some(index) }
        }
    }

    /// Longest candidate containing `dest`. `bway` selects B-way search
    /// with the given branching factor; `None` selects binary search.
    pub fn lookup(&self, dest: A, bway: Option<u8>, cost: &mut Cost) -> Option<Prefix<A>> {
        match &self.index {
            None => {
                // In-line scan: free, the line came with the entry.
                self.inline.iter().filter(|p| p.contains(dest)).max_by_key(|p| p.len()).copied()
            }
            Some(index) => match bway {
                Some(b) => index.lookup_bway(dest, b, cost),
                None => index.lookup_binary(dest, cost),
            },
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.inline.len()
    }

    /// `true` iff there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.inline.is_empty()
    }

    /// `true` iff the set fits the entry's cache line.
    pub fn is_inline(&self) -> bool {
        self.index.is_none()
    }

    /// Approximate resident bytes beyond the base entry.
    pub fn memory_bytes(&self) -> usize {
        self.inline.len() * core::mem::size_of::<Prefix<A>>()
            + self.index.as_ref().map_or(0, RangeIndex::memory_bytes)
    }
}

/// Where and how a continued search proceeds — the family-specific
/// incarnation of the paper's `Ptr` field.
#[derive(Debug, Clone)]
pub enum Continuation<A: Address> {
    /// Resume the bit-by-bit walk at this vertex (Regular family).
    TrieNode(NodeId),
    /// Resume the Patricia walk at this location (Patricia family).
    PatriciaLoc(Location),
    /// Search the candidate range set (Binary and B-way families).
    Range(CandidateRange<A>),
    /// Binary-search the candidate lengths (Log W family, Section 4's
    /// “adapting the log W method”).
    Lengths(LengthBinarySearch<A>),
    /// Resume the multibit walk at this stride node (Stride family,
    /// extension): the clue's bits already determined the earlier
    /// levels.
    StrideNode(SNodeId),
}

/// One clue-table entry: the clue string (kept for verification, as the
/// paper prescribes), the FD field and the optional continuation.
#[derive(Debug, Clone)]
pub struct ClueEntry<A: Address> {
    /// The clue this entry describes (verified on every consult).
    pub clue: Prefix<A>,
    /// Final decision / fallback: the BMP of the clue in this router.
    pub fd: Option<Prefix<A>>,
    /// `None` = the paper's “Ptr = Empty”: FD is final.
    pub cont: Option<Continuation<A>>,
}

impl<A: Address> ClueEntry<A> {
    /// `true` iff consulting this entry resolves the lookup with no
    /// continued search.
    pub fn is_final(&self) -> bool {
        self.cont.is_none()
    }
}

/// The per-neighbor clue table.
#[derive(Debug, Clone)]
pub struct ClueTable<A: Address> {
    kind: TableKind,
    /// Keyed through the in-workspace fast hasher: this map is probed
    /// once per clue-routed packet, so SipHash would dominate the
    /// “one memory access” the probe is meant to model.
    map: FxHashMap<Prefix<A>, ClueEntry<A>>,
    slots: Vec<Option<ClueEntry<A>>>,
}

impl<A: Address> ClueTable<A> {
    /// An empty table of the given kind.
    pub fn new(kind: TableKind) -> Self {
        ClueTable { kind, map: FxHashMap::default(), slots: Vec::new() }
    }

    /// The addressing flavour.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self.kind {
            TableKind::Hashed => self.map.len(),
            TableKind::Indexed => self.slots.iter().flatten().count(),
        }
    }

    /// `true` iff the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consults the table for a received clue — **the one mandatory
    /// memory access of every clue-routed lookup**.
    ///
    /// For an [`TableKind::Indexed`] table the sender-stamped `index` is
    /// required; the stored clue is compared against the received one (a
    /// free check) and a mismatch reads as a miss, which makes stale slots
    /// harmless (the paper's robustness argument).
    pub fn get(&self, clue: &Prefix<A>, index: Option<u16>, cost: &mut Cost) -> Option<&ClueEntry<A>> {
        self.get_with_residency(clue, index, false, cost)
    }

    /// As [`Self::get`], but when `cached` is `true` the entry bytes are
    /// already resident in fast memory (Section 3.5's cache) and the
    /// slow-memory probe is skipped — the caller has charged a
    /// [`Cost::cache_read`] instead.
    pub fn get_with_residency(
        &self,
        clue: &Prefix<A>,
        index: Option<u16>,
        cached: bool,
        cost: &mut Cost,
    ) -> Option<&ClueEntry<A>> {
        match self.kind {
            TableKind::Hashed => {
                if !cached {
                    cost.hash_probe();
                }
                self.map.get(clue)
            }
            TableKind::Indexed => {
                if !cached {
                    cost.indexed_read();
                }
                let slot = self.slots.get(index? as usize)?.as_ref()?;
                if slot.clue == *clue {
                    Some(slot)
                } else {
                    None // stale slot: the clue moved; treat as a miss
                }
            }
        }
    }

    /// Inserts or overwrites an entry. For indexed tables `index` selects
    /// the slot (required); for hashed tables it is ignored.
    pub fn insert(&mut self, entry: ClueEntry<A>, index: Option<u16>) {
        match self.kind {
            TableKind::Hashed => {
                self.map.insert(entry.clue, entry);
            }
            TableKind::Indexed => {
                let idx = index.expect("indexed clue table requires an index") as usize;
                if self.slots.len() <= idx {
                    self.slots.resize_with(idx + 1, || None);
                }
                self.slots[idx] = Some(entry);
            }
        }
    }

    /// Iterates over the live entries.
    pub fn entries(&self) -> Box<dyn Iterator<Item = &ClueEntry<A>> + '_> {
        match self.kind {
            TableKind::Hashed => Box::new(self.map.values()),
            TableKind::Indexed => Box::new(self.slots.iter().flatten()),
        }
    }

    /// Iterates over indexed slots as `(index, entry)`. Empty for hashed
    /// tables (their entries carry no index).
    pub fn entries_with_indices(&self) -> impl Iterator<Item = (u16, &ClueEntry<A>)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i as u16, e)))
    }

    /// Removes every entry (e.g. after a routing-table change when not
    /// using the paper's keep-and-mark-invalid option).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
    }

    /// The paper's Section 3.5 size model: clue value + FD always, plus a
    /// `Ptr` for problematic entries — each field one address wide
    /// (4 bytes in IPv4). The paper's arithmetic: ~60 000 entries × ~9
    /// bytes ≈ 540 KB.
    pub fn memory_bytes_model(&self) -> usize {
        let field = (A::BITS as usize) / 8;
        self.entries()
            .map(|e| 2 * field + if e.is_final() { 0 } else { field })
            .sum()
    }

    /// Actual resident bytes of this implementation, including candidate
    /// sets (which the paper keeps in the same cache lines).
    pub fn memory_bytes_actual(&self) -> usize {
        let base = core::mem::size_of::<ClueEntry<A>>();
        self.entries()
            .map(|e| {
                base + match &e.cont {
                    Some(Continuation::Range(r)) => r.memory_bytes(),
                    Some(Continuation::Lengths(l)) => l.memory_bytes(),
                    _ => 0,
                }
            })
            .sum()
    }

    /// Fraction of entries that require a continued search — the paper's
    /// “problematic clue” ratio (Table 2: under 10 %, usually ≪ 1 %).
    pub fn problematic_fraction(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let bad = self.entries().filter(|e| !e.is_final()).count();
        bad as f64 / n as f64
    }
}

/// Sender-side enumerator for the indexing technique: assigns each clue a
/// stable 16-bit index the first time it is sent to a given neighbor
/// (Section 3.3.1 assumes at most 64 K clues per neighbor pair).
#[derive(Debug, Clone, Default)]
pub struct ClueIndexer<A: Address> {
    indices: HashMap<Prefix<A>, u16>,
}

impl<A: Address> ClueIndexer<A> {
    /// An empty indexer.
    pub fn new() -> Self {
        ClueIndexer { indices: HashMap::new() }
    }

    /// The index for `clue`, assigning the next free one on first use.
    ///
    /// # Panics
    /// Panics after 65 536 distinct clues (the paper's 16-bit budget).
    pub fn index_of(&mut self, clue: &Prefix<A>) -> u16 {
        let next = self.indices.len();
        *self.indices.entry(*clue).or_insert_with(|| {
            u16::try_from(next).expect("more than 64K clues for one neighbor")
        })
    }

    /// Number of clues enumerated so far.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` iff no clue has been enumerated.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn entry(clue: &str, fd: Option<&str>) -> ClueEntry<Ip4> {
        ClueEntry { clue: p(clue), fd: fd.map(p), cont: None }
    }

    #[test]
    fn hashed_get_costs_one_probe() {
        let mut t = ClueTable::new(TableKind::Hashed);
        t.insert(entry("10.0.0.0/8", Some("10.0.0.0/8")), None);
        let mut c = Cost::new();
        let e = t.get(&p("10.0.0.0/8"), None, &mut c).unwrap();
        assert_eq!(e.fd, Some(p("10.0.0.0/8")));
        assert_eq!(c.hash_probes, 1);
        assert_eq!(c.total(), 1);
        // Miss also costs exactly one probe.
        let mut c2 = Cost::new();
        assert!(t.get(&p("77.0.0.0/8"), None, &mut c2).is_none());
        assert_eq!(c2.total(), 1);
    }

    #[test]
    fn indexed_get_verifies_stored_clue() {
        let mut t = ClueTable::new(TableKind::Indexed);
        t.insert(entry("10.0.0.0/8", None), Some(3));
        let mut c = Cost::new();
        assert!(t.get(&p("10.0.0.0/8"), Some(3), &mut c).is_some());
        assert_eq!(c.indexed_reads, 1);
        // Stale slot: stored clue differs → miss, not confusion.
        assert!(t.get(&p("20.0.0.0/8"), Some(3), &mut c).is_none());
        // Unknown slot → miss.
        assert!(t.get(&p("10.0.0.0/8"), Some(9), &mut c).is_none());
        // Missing index → miss.
        assert!(t.get(&p("10.0.0.0/8"), None, &mut c).is_none());
    }

    #[test]
    fn indexed_overwrite_replaces_slot() {
        let mut t = ClueTable::new(TableKind::Indexed);
        t.insert(entry("10.0.0.0/8", None), Some(0));
        t.insert(entry("20.0.0.0/8", None), Some(0));
        let mut c = Cost::new();
        assert!(t.get(&p("10.0.0.0/8"), Some(0), &mut c).is_none());
        assert!(t.get(&p("20.0.0.0/8"), Some(0), &mut c).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn memory_model_matches_paper_arithmetic() {
        let mut t = ClueTable::new(TableKind::Hashed);
        for i in 0..100u32 {
            let mut e = entry(&format!("{}.0.0.0/8", i + 1), None);
            if i < 10 {
                e.cont = Some(Continuation::Range(CandidateRange::new(vec![], 3)));
            }
            t.insert(e, None);
        }
        // 90 final entries at 8 B + 10 problematic at 12 B = 840 B.
        assert_eq!(t.memory_bytes_model(), 90 * 8 + 10 * 12);
        assert!((t.problematic_fraction() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn candidate_range_inline_is_free() {
        let cr = CandidateRange::new(vec![p("10.1.0.0/16"), p("10.2.0.0/16")], 3);
        assert!(cr.is_inline());
        let mut c = Cost::new();
        assert_eq!(
            cr.lookup("10.1.9.9".parse().unwrap(), None, &mut c),
            Some(p("10.1.0.0/16"))
        );
        assert_eq!(c.total(), 0);
        assert_eq!(cr.lookup("10.9.9.9".parse().unwrap(), None, &mut c), None);
    }

    #[test]
    fn candidate_range_large_uses_counted_search() {
        let cands: Vec<Prefix<Ip4>> =
            (0..32u32).map(|i| Prefix::new(Ip4(0x0A00_0000 | i << 16), 16)).collect();
        let cr = CandidateRange::new(cands, 3);
        assert!(!cr.is_inline());
        let mut c = Cost::new();
        let addr: Ip4 = "10.5.1.2".parse().unwrap();
        assert_eq!(cr.lookup(addr, None, &mut c), Some(p("10.5.0.0/16")));
        assert!(c.range_probes > 0);
        let mut c6 = Cost::new();
        assert_eq!(cr.lookup(addr, Some(6), &mut c6), Some(p("10.5.0.0/16")));
        assert!(c6.range_probes <= c.range_probes);
    }

    #[test]
    fn indexer_assigns_stable_indices() {
        let mut ix = ClueIndexer::new();
        let a = ix.index_of(&p("10.0.0.0/8"));
        let b = ix.index_of(&p("20.0.0.0/8"));
        assert_ne!(a, b);
        assert_eq!(ix.index_of(&p("10.0.0.0/8")), a);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn clear_empties_both_kinds() {
        for kind in [TableKind::Hashed, TableKind::Indexed] {
            let mut t = ClueTable::new(kind);
            t.insert(entry("10.0.0.0/8", None), Some(0));
            assert!(!t.is_empty());
            t.clear();
            assert!(t.is_empty());
        }
    }
}
