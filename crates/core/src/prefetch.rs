//! Software prefetch behind a safe wrapper.
//!
//! The stride batch loop (see [`crate::stride`]) processes packets in
//! interleaved groups: pass one computes where each packet's walk will
//! start and asks the hardware to pull that line toward L1, pass two
//! does the walks while the fetches are in flight. The intrinsic lives
//! here so the rest of the crate stays `#![deny(unsafe_code)]`.
//!
//! On x86_64 this issues `prefetcht0`; elsewhere it compiles to
//! nothing. Either way it is a pure *hint*: no fault, no side effect on
//! program state, no observable behavior beyond timing — which is the
//! safety argument for the scoped `allow` below.
#![allow(unsafe_code)]

/// Hints the CPU to fetch the cache line holding `r` into all levels.
///
/// Never faults: prefetch instructions ignore invalid addresses, and
/// `&T` is always valid anyway. A no-op on targets without a prefetch
/// intrinsic.
#[inline(always)]
pub fn prefetch_read<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint instruction — it performs no
    // load, cannot fault even on unmapped addresses, and has no
    // architectural effect; the pointer is derived from a live `&T`.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            (r as *const T).cast::<i8>(),
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        // Nothing observable to assert beyond "does not crash and does
        // not mutate": prefetch any stack value and a heap slice edge.
        let x = 42u64;
        prefetch_read(&x);
        assert_eq!(x, 42);
        let v = vec![1u32; 1024];
        prefetch_read(&v[0]);
        prefetch_read(&v[1023]);
        assert_eq!(v.iter().sum::<u32>(), 1024);
    }
}
