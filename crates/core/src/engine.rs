//! The router-side distributed-lookup engine: one per (incoming neighbor,
//! lookup family, method) triple.
//!
//! [`ClueEngine::lookup`] implements the per-packet procedure of Figure 5
//! in the paper:
//!
//! 1. consult the clue table (the one mandatory memory access);
//! 2. on a hit with an empty `Ptr`, route by the FD field — done;
//! 3. on a hit with a continuation, resume the lookup *from the clue*
//!    using the engine's family (trie walk, Patricia walk, candidate
//!    range search, or candidate length search), falling back to FD;
//! 4. on a miss, perform a full common lookup and — in learning mode —
//!    compute and insert the new clue's entry (`procedure new-clue`).
//!
//! The engine also implements the Section 4 refinement for the trie
//! families: a per-vertex Boolean (computed from Claim 1 against the
//! sender's table) that stops a continued walk as soon as no candidate
//! can lie below the current vertex.

use std::collections::HashSet;

use clue_lookup::{Family, LengthBinarySearch, RangeIndex, StrideTrie};
use clue_telemetry::{CacheTelemetry, LookupClass, LookupEvent, LookupTelemetry, Registry};
use clue_trie::{Address, BinaryTrie, Cost, Location, NodeId, PatriciaTrie, Prefix};

use crate::cache::{CacheStats, PresenceCache};
use crate::classify::{classify, Classification};
use crate::clue::ClueHeader;
use crate::profile::{record_walk_split, Span, Stage, StageProfiler};
use crate::table::{CandidateRange, ClueEntry, ClueTable, Continuation, TableKind};

/// The three per-family method variants of the paper's Tables 4–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// No clue use at all — the plain lookup scheme (“common”).
    Common,
    /// Section 3.1.1: continue the search whenever the clue vertex has
    /// descendants; no knowledge of the sender's table needed.
    Simple,
    /// Section 3.1.2: precompute Claim 1 against the sender's table so
    /// that only genuinely problematic clues trigger a continued search.
    Advance,
}

impl Method {
    /// All three methods, in the paper's table order.
    pub fn all() -> [Method; 3] {
        [Method::Common, Method::Simple, Method::Advance]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Common => "common",
            Method::Simple => "Simple",
            Method::Advance => "Advance",
        }
    }
}

impl core::fmt::Display for Method {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The lookup family used for common lookups and continuations.
    pub family: Family,
    /// Common / Simple / Advance.
    pub method: Method,
    /// Clue-table addressing (hash vs 16-bit sender index).
    pub table_kind: TableKind,
    /// Candidate sets up to this size ride in the clue entry's cache line
    /// and are searched for free (Section 4, SDRAM observation).
    pub line_capacity: usize,
    /// Learn unknown clues on the fly (`procedure new-clue`); otherwise
    /// misses just fall back to the common lookup.
    pub learning: bool,
    /// Use the per-vertex Claim 1 Booleans of Section 4 to stop trie
    /// continuations early (precomputed engines only).
    pub vertex_bits: bool,
    /// Upper bound on entries a *learning* table may grow to — a guard
    /// against clue flooding by a buggy or adversarial sender. Beyond
    /// the cap, unknown clues still resolve (full lookup) but are not
    /// learned. `None` = unbounded.
    pub max_learned_entries: Option<usize>,
}

impl EngineConfig {
    /// A configuration with the paper's defaults: hashed table, cache
    /// lines holding 3 candidates, no learning, vertex bits on.
    pub fn new(family: Family, method: Method) -> Self {
        EngineConfig {
            family,
            method,
            table_kind: TableKind::Hashed,
            line_capacity: 3,
            learning: false,
            vertex_bits: true,
            max_learned_entries: None,
        }
    }

    /// Enables on-the-fly learning.
    pub fn with_learning(mut self) -> Self {
        self.learning = true;
        self
    }

    /// Selects the indexing technique (16-bit sender-stamped indices).
    pub fn with_indexed_table(mut self) -> Self {
        self.table_kind = TableKind::Indexed;
        self
    }
}

/// Family-specific search structures.
#[derive(Debug)]
enum Inner<A: Address> {
    /// Uses the engine's binary trie directly.
    Regular,
    Patricia(PatriciaTrie<A>),
    Ranges { index: RangeIndex<A>, b: Option<u8> },
    LogW(LengthBinarySearch<A>),
    Stride(StrideTrie<A>),
}

/// Per-engine lookup telemetry: how often each resolution path ran.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Lookups that arrived with no usable clue (or Method::Common).
    pub clueless: u64,
    /// Clue-table hits resolved by the FD alone (Ptr empty).
    pub finals: u64,
    /// Clue-table hits that ran a continuation search.
    pub continued: u64,
    /// Clue-table misses (unknown clue → full lookup).
    pub misses: u64,
    /// Malformed clues ignored (not a prefix of the destination).
    pub malformed: u64,
}

impl EngineStats {
    /// Total lookups observed.
    pub fn total(&self) -> u64 {
        self.clueless + self.finals + self.continued + self.misses + self.malformed
    }

    /// Accumulates `other` into this block — e.g. the per-batch counts
    /// [`FrozenEngine`](crate::FrozenEngine) returns from
    /// `lookup_batch`, summed across batches or reader threads. Each
    /// lookup is counted in exactly one class by exactly one batch, so
    /// the merged totals keep the exactly-once-per-packet property.
    pub fn merge(&mut self, other: &EngineStats) {
        self.clueless += other.clueless;
        self.finals += other.finals;
        self.continued += other.continued;
        self.misses += other.misses;
        self.malformed += other.malformed;
    }

    /// Fraction of clue-carrying lookups resolved by the FD alone.
    pub fn final_rate(&self) -> f64 {
        let clued = self.finals + self.continued + self.misses;
        if clued == 0 {
            0.0
        } else {
            self.finals as f64 / clued as f64
        }
    }

    /// The same numbers read back out of a telemetry bundle — the
    /// registry view of an instrumented engine. For an engine whose
    /// telemetry was attached at construction and never reset
    /// independently, `engine.stats() == EngineStats::from_telemetry(t)`.
    pub fn from_telemetry(t: &LookupTelemetry) -> Self {
        EngineStats {
            clueless: t.class_count(LookupClass::Clueless),
            finals: t.class_count(LookupClass::Final),
            continued: t.class_count(LookupClass::Continued),
            misses: t.class_count(LookupClass::Miss),
            malformed: t.class_count(LookupClass::Malformed),
        }
    }
}

/// A distributed-IP-lookup engine for one incoming neighbor.
#[derive(Debug)]
pub struct ClueEngine<A: Address> {
    config: EngineConfig,
    /// The receiver's trie `t2` (always kept: classification, FD
    /// computation and the Regular family all need it).
    t2: BinaryTrie<A, ()>,
    inner: Inner<A>,
    table: ClueTable<A>,
    /// What we know of the sender's prefixes: the full snapshot
    /// (precomputed mode) or the clues seen so far (learning mode).
    sender: HashSet<Prefix<A>>,
    /// Section 4 per-vertex continuation Booleans, by arena index.
    bits_bin: Option<Vec<bool>>,
    bits_pat: Option<Vec<bool>>,
    /// Section 3.5 fast cache in front of the clue table: resident clues
    /// are served with a cache read instead of a slow-memory probe.
    cache: Option<PresenceCache<A>>,
    /// Resolution-path counters.
    stats: EngineStats,
    /// Full telemetry (histograms, traces), mirrored alongside `stats`
    /// when attached; `None` costs one predictable branch per lookup.
    telemetry: Option<LookupTelemetry>,
    /// Cache telemetry to hand to the cache — kept here so a cache
    /// enabled *after* instrumentation is still wired up.
    cache_telemetry: Option<CacheTelemetry>,
}

impl<A: Address> ClueEngine<A> {
    /// Builds an engine with a fully precomputed clue table, knowing the
    /// sender's table exactly (the Section 3.3.2 construction).
    ///
    /// `clues` is the set of prefixes the sender may send as clues — all
    /// of its table in the standalone setting, or only the prefixes whose
    /// next hop is this router in a network setting.
    pub fn precomputed(
        clues: &[Prefix<A>],
        receiver: &[Prefix<A>],
        config: EngineConfig,
    ) -> Self {
        let mut engine = Self::learning_base(receiver, config);
        if config.method == Method::Common {
            // A clue-less engine needs no table, knowledge, or bits.
            return engine;
        }
        engine.sender = clues.iter().copied().collect();
        if config.vertex_bits && config.method == Method::Advance {
            engine.compute_vertex_bits();
        }
        for (i, clue) in clues.iter().enumerate() {
            if clue.is_empty() {
                continue; // a zero-length BMP is never sent as a clue
            }
            let entry = engine.build_entry(*clue);
            let index = match config.table_kind {
                TableKind::Hashed => None,
                TableKind::Indexed => {
                    Some(u16::try_from(i).expect("more than 64K clues for one neighbor"))
                }
            };
            engine.table.insert(entry, index);
        }
        engine
    }

    /// Builds an engine with an empty clue table that learns entries on
    /// the fly (Section 3.3.1). Knowledge of the sender accrues from the
    /// clues themselves — conservative but always correct.
    pub fn learning(receiver: &[Prefix<A>], config: EngineConfig) -> Self {
        let mut config = config;
        config.learning = true;
        Self::learning_base(receiver, config)
    }

    fn learning_base(receiver: &[Prefix<A>], config: EngineConfig) -> Self {
        let t2: BinaryTrie<A, ()> = receiver.iter().map(|p| (*p, ())).collect();
        let inner = match config.family {
            Family::Regular => Inner::Regular,
            Family::Patricia => Inner::Patricia(receiver.iter().copied().collect()),
            Family::Binary => {
                Inner::Ranges { index: RangeIndex::new(receiver.iter().copied()), b: None }
            }
            Family::BWay(b) => {
                Inner::Ranges { index: RangeIndex::new(receiver.iter().copied()), b: Some(b) }
            }
            Family::LogW => Inner::LogW(LengthBinarySearch::new(receiver.iter().copied())),
            Family::Stride => Inner::Stride(StrideTrie::new(receiver.iter().copied())),
        };
        ClueEngine {
            config,
            t2,
            inner,
            table: ClueTable::new(config.table_kind),
            sender: HashSet::new(),
            bits_bin: None,
            bits_pat: None,
            cache: None,
            stats: EngineStats::default(),
            telemetry: None,
            cache_telemetry: None,
        }
    }

    /// Lookup counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the lookup counters and any attached lookup telemetry so
    /// the two views stay consistent (e.g. after a warm-up phase). Cache
    /// statistics are left alone; see [`Self::reset_all_stats`].
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
        if let Some(t) = &self.telemetry {
            t.reset();
        }
    }

    /// As [`Self::reset_stats`], additionally resetting the cache's
    /// hit/miss/churn statistics.
    pub fn reset_all_stats(&mut self) {
        self.reset_stats();
        if let Some(cache) = &mut self.cache {
            cache.reset_stats();
        }
    }

    /// Registers this engine's metrics in `registry` under the
    /// workspace naming convention and starts recording: per-class
    /// lookup counters under `clue_core_*`, memory-reference /
    /// search-depth / clue-length histograms, and — for a cache enabled
    /// before or after this call — `clue_cache_*` counters.
    pub fn instrument(&mut self, registry: &Registry) {
        self.attach_telemetry(LookupTelemetry::registered(registry, "clue_core"));
        let cache_t = CacheTelemetry::registered(registry, "clue_cache");
        if let Some(cache) = &mut self.cache {
            cache.attach_telemetry(cache_t.clone());
        }
        self.cache_telemetry = Some(cache_t);
    }

    /// Attaches a custom lookup-telemetry bundle (detached, or
    /// registered under a non-default prefix); recording starts
    /// immediately and mirrors every [`Self::stats`] increment.
    pub fn attach_telemetry(&mut self, telemetry: LookupTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The attached lookup telemetry, if any.
    pub fn telemetry(&self) -> Option<&LookupTelemetry> {
        self.telemetry.as_ref()
    }

    /// Puts an LRU cache of `capacity` clue entries in front of the clue
    /// table (Section 3.5). Cached consults cost a
    /// [`Cost::cache_read`] instead of a slow-memory probe; misses pay
    /// both and promote the entry.
    pub fn enable_cache(&mut self, capacity: usize) {
        let mut cache = PresenceCache::new(capacity);
        if let Some(t) = &self.cache_telemetry {
            cache.attach_telemetry(t.clone());
        }
        self.cache = Some(cache);
    }

    /// Cache hit/miss statistics, if a cache is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The clue table (for statistics: size, problematic fraction,
    /// memory model).
    pub fn table(&self) -> &ClueTable<A> {
        &self.table
    }

    /// The receiver's prefixes. Borrows from the engine's trie — collect
    /// only if an owned snapshot is genuinely needed.
    pub fn receiver_prefixes(&self) -> impl Iterator<Item = Prefix<A>> + '_ {
        self.t2.prefixes()
    }

    /// The receiver's trie, for the freezer.
    pub(crate) fn t2_ref(&self) -> &BinaryTrie<A, ()> {
        &self.t2
    }

    /// The Section 4 per-vertex Booleans, if computed, for the freezer.
    pub(crate) fn bits_bin_ref(&self) -> Option<&[bool]> {
        self.bits_bin.as_deref()
    }

    /// Whether an LRU cache sits in front of the clue table.
    pub(crate) fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Whether continuations run on the engine's own binary trie.
    pub(crate) fn is_regular_family(&self) -> bool {
        matches!(self.inner, Inner::Regular)
    }

    /// A one-line human-readable summary (diagnostics / CLI output).
    pub fn describe(&self) -> String {
        format!(
            "{}/{} engine: {} receiver prefixes, {} clue entries ({:.2}% problematic), {} B (paper model){}",
            self.config.family,
            self.config.method,
            self.t2.len(),
            self.table.len(),
            self.table.problematic_fraction() * 100.0,
            self.table.memory_bytes_model(),
            match &self.cache {
                Some(c) => format!(", cache {}/{}", c.len(), c.capacity()),
                None => String::new(),
            }
        )
    }

    /// The full per-packet lookup of Figure 5: returns the BMP of `dest`
    /// in this router's table, charging every memory access to `cost`.
    ///
    /// `clue`/`index` come from the packet header (see
    /// [`Self::lookup_with_header`]). A `None` clue, or
    /// [`Method::Common`], degrades to the plain common lookup.
    pub fn lookup(
        &mut self,
        dest: A,
        clue: Option<Prefix<A>>,
        index: Option<u16>,
        cost: &mut Cost,
    ) -> Option<Prefix<A>> {
        let refs_start = cost.total();
        let mut clue_len = None;
        let mut cache_hit = None;
        let mut search_depth = 0;
        let (result, class) = 'resolved: {
            let s = match (self.config.method, clue) {
                (Method::Common, _) | (_, None) => {
                    break 'resolved (self.common_lookup(dest, cost), LookupClass::Clueless);
                }
                (_, Some(s)) => s,
            };
            clue_len = Some(s.len());
            if !s.contains(dest) {
                // A clue that is not a prefix of the destination is
                // malformed (corrupted header or a confused sender). The
                // paper's robustness property: bad clues can never cause
                // confusion — fall back to the full lookup. Not learned
                // either.
                break 'resolved (self.common_lookup(dest, cost), LookupClass::Malformed);
            }
            // Section 3.5 cache: a resident clue is served from fast
            // memory; a miss pays the cache probe *and* the slow table
            // probe, then promotes the entry.
            let mut cached = false;
            if let Some(cache) = &mut self.cache {
                cost.cache_read();
                cached = cache.get(&s).is_some();
                cache_hit = Some(cached);
            }
            let mut was_final = false;
            let resolved = match self.table.get_with_residency(&s, index, cached, cost) {
                Some(entry) => {
                    was_final = entry.is_final();
                    let before = cost.total();
                    let r = self.resolve(entry, dest, cost);
                    search_depth = cost.total() - before;
                    Some(r)
                }
                None => None,
            };
            if !cached && resolved.is_some() {
                if let Some(cache) = &mut self.cache {
                    cache.insert(s, ());
                }
            }
            match resolved {
                Some(r) if was_final => (r, LookupClass::Final),
                Some(r) => (r, LookupClass::Continued),
                None => {
                    // Never saw this clue: full lookup, then learn it.
                    let r = self.common_lookup(dest, cost);
                    if self.config.learning {
                        self.learn(s, index);
                    }
                    (r, LookupClass::Miss)
                }
            }
        };
        match class {
            LookupClass::Clueless => self.stats.clueless += 1,
            LookupClass::Final => self.stats.finals += 1,
            LookupClass::Continued => self.stats.continued += 1,
            LookupClass::Miss => self.stats.misses += 1,
            LookupClass::Malformed => self.stats.malformed += 1,
        }
        if let Some(t) = &self.telemetry {
            t.record(&LookupEvent {
                clue_len,
                class,
                search_depth,
                cache_hit,
                memory_references: cost.total() - refs_start,
            });
        }
        result
    }

    /// As [`Self::lookup`], additionally attributing predicted ticks,
    /// measured nanoseconds and touched record bytes to pipeline
    /// stages in `prof` (see [`crate::StageProfiler`]).
    ///
    /// **Semantically inert**: the full Figure-5 flow runs unchanged —
    /// same BMP, same class, tick-for-tick the same `cost`, the same
    /// stats/telemetry/learning/cache side effects — with stage spans
    /// observing the deltas. A separate function, so the unprofiled
    /// hot path carries zero profiling overhead.
    ///
    /// Byte attribution uses the engine's mean arena-record size per
    /// charged trie tick; exact for the Regular family (every tick is
    /// one arena vertex), an approximation for the range/length
    /// families whose probes touch different record shapes.
    pub fn lookup_profiled(
        &mut self,
        dest: A,
        clue: Option<Prefix<A>>,
        index: Option<u16>,
        cost: &mut Cost,
        prof: &mut StageProfiler,
    ) -> Option<Prefix<A>> {
        let node_bytes = (self.t2.memory_bytes() / self.t2.arena_len().max(1)) as u64;
        let whole = Span::start();
        let refs_start = cost.total();
        let mut clue_len = None;
        let mut cache_hit = None;
        let mut search_depth = 0;
        let (result, class) = 'resolved: {
            let s = match (self.config.method, clue) {
                (Method::Common, _) | (_, None) => {
                    break 'resolved (
                        self.profiled_common(dest, cost, prof, node_bytes),
                        LookupClass::Clueless,
                    );
                }
                (_, Some(s)) => s,
            };
            clue_len = Some(s.len());
            if !s.contains(dest) {
                break 'resolved (
                    self.profiled_common(dest, cost, prof, node_bytes),
                    LookupClass::Malformed,
                );
            }
            let mut cached = false;
            if let Some(cache) = &mut self.cache {
                let span = Span::start();
                cost.cache_read();
                cached = cache.get(&s).is_some();
                let ns = span.stop();
                cache_hit = Some(cached);
                prof.record(Stage::Cache, 1, core::mem::size_of::<Prefix<A>>() as u64, ns);
            }
            let mut was_final = false;
            let probe_before = cost.total();
            let probe_span = Span::start();
            let probe = self.table.get_with_residency(&s, index, cached, cost);
            let probe_ns = probe_span.stop();
            prof.record(
                Stage::ClueProbe,
                cost.total() - probe_before,
                core::mem::size_of::<ClueEntry<A>>() as u64,
                probe_ns,
            );
            let resolved = match probe {
                Some(entry) => {
                    was_final = entry.is_final();
                    let before = cost.total();
                    let span = Span::start();
                    let r = self.resolve(entry, dest, cost);
                    let ns = span.stop();
                    search_depth = cost.total() - before;
                    if !was_final {
                        prof.record(
                            Stage::Continuation,
                            search_depth,
                            node_bytes * search_depth,
                            ns,
                        );
                    }
                    Some(r)
                }
                None => None,
            };
            if !cached && resolved.is_some() {
                if let Some(cache) = &mut self.cache {
                    cache.insert(s, ());
                }
            }
            match resolved {
                Some(r) if was_final => (r, LookupClass::Final),
                Some(r) => (r, LookupClass::Continued),
                None => {
                    let r = self.profiled_common(dest, cost, prof, node_bytes);
                    if self.config.learning {
                        self.learn(s, index);
                    }
                    (r, LookupClass::Miss)
                }
            }
        };
        match class {
            LookupClass::Clueless => self.stats.clueless += 1,
            LookupClass::Final => self.stats.finals += 1,
            LookupClass::Continued => self.stats.continued += 1,
            LookupClass::Miss => self.stats.misses += 1,
            LookupClass::Malformed => self.stats.malformed += 1,
        }
        if let Some(t) = &self.telemetry {
            t.record(&LookupEvent {
                clue_len,
                class,
                search_depth,
                cache_hit,
                memory_references: cost.total() - refs_start,
            });
        }
        prof.record_lookup(cost.total() - refs_start, whole.stop());
        result
    }

    /// The common lookup with its span attributed across Root/Inner
    /// (see [`crate::profile::record_walk_split`] for the split rule).
    fn profiled_common(
        &self,
        dest: A,
        cost: &mut Cost,
        prof: &mut StageProfiler,
        node_bytes: u64,
    ) -> Option<Prefix<A>> {
        let span = Span::start();
        let mut walk = Cost::new();
        let bmp = self.common_lookup(dest, &mut walk);
        let ns = span.stop();
        record_walk_split(prof, &walk, ns, node_bytes);
        *cost += walk;
        bmp
    }

    /// As [`Self::lookup`], decoding the clue from a packet header.
    pub fn lookup_with_header(
        &mut self,
        dest: A,
        header: &ClueHeader,
        cost: &mut Cost,
    ) -> Option<Prefix<A>> {
        self.lookup(dest, header.decode(dest), header.index, cost)
    }

    /// The plain lookup of this engine's family, with no clue at all.
    pub fn common_lookup(&self, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        match &self.inner {
            Inner::Regular => self.t2.lookup_counted(dest, cost).map(|r| self.t2.prefix(r)),
            Inner::Patricia(p) => p.lookup_counted(dest, cost),
            Inner::Ranges { index, b } => match b {
                Some(b) => index.lookup_bway(dest, *b, cost),
                None => index.lookup_binary(dest, cost),
            },
            Inner::LogW(l) => l.lookup(dest, cost),
            Inner::Stride(s) => s.lookup_counted(dest, cost),
        }
    }

    /// Uncounted reference BMP (for correctness checks).
    pub fn reference_lookup(&self, dest: A) -> Option<Prefix<A>> {
        self.t2.lookup(dest).map(|r| self.t2.prefix(r))
    }

    fn resolve(&self, entry: &ClueEntry<A>, dest: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let Some(cont) = &entry.cont else {
            return entry.fd; // Ptr empty: the FD is final
        };
        let found = match cont {
            Continuation::TrieNode(n) => match &self.bits_bin {
                Some(bits) => self.trie_walk_bits(*n, bits, dest, cost),
                None => self.t2.lookup_from(*n, dest, cost).map(|r| self.t2.prefix(r)),
            },
            Continuation::PatriciaLoc(loc) => {
                let Inner::Patricia(p) = &self.inner else {
                    unreachable!("Patricia continuation in non-Patricia engine")
                };
                match &self.bits_pat {
                    Some(bits) => Self::patricia_walk_bits(p, bits, *loc, dest, cost),
                    None => p.lookup_from(*loc, dest, cost),
                }
            }
            Continuation::Range(cr) => {
                let b = match &self.inner {
                    Inner::Ranges { b, .. } => *b,
                    _ => None,
                };
                cr.lookup(dest, b, cost)
            }
            Continuation::Lengths(l) => l.lookup(dest, cost),
            Continuation::StrideNode(n) => {
                let Inner::Stride(s) = &self.inner else {
                    unreachable!("stride continuation in non-stride engine")
                };
                // Expanded slots below a non-stride-aligned clue can
                // carry prefixes *shorter* than the clue; those must not
                // shadow a longer FD, so merge by length.
                let found = s.lookup_from(*n, dest, cost);
                return match (found, entry.fd) {
                    (Some(f), Some(fd)) if fd.len() > f.len() => Some(fd),
                    (None, fd) => fd,
                    (f, _) => f,
                };
            }
        };
        found.or(entry.fd)
    }

    /// Builds the clue-table entry for `clue` against current knowledge
    /// (`procedure new-clue` in Figure 5, generalised to all families).
    fn build_entry(&self, clue: Prefix<A>) -> ClueEntry<A> {
        let cls = match self.config.method {
            // Simple pretends to know nothing about the sender: any
            // marked descendant makes the clue worth continuing from.
            Method::Common | Method::Simple => classify(&clue, &self.t2, &|_| false),
            Method::Advance => classify(&clue, &self.t2, &|p| self.sender.contains(p)),
        };
        let fd = cls.fd();
        let cont = match cls {
            Classification::Problematic { candidates, .. } => Some(match &self.inner {
                Inner::Regular => Continuation::TrieNode(
                    self.t2.node_of_prefix(&clue).expect("problematic clue vertex exists"),
                ),
                Inner::Patricia(p) => {
                    let loc = p.locate(&clue);
                    debug_assert!(
                        !matches!(loc, Location::Absent { .. }),
                        "problematic clue must lie in the Patricia trie"
                    );
                    Continuation::PatriciaLoc(loc)
                }
                Inner::Ranges { .. } => Continuation::Range(CandidateRange::new(
                    candidates,
                    self.config.line_capacity,
                )),
                Inner::LogW(_) => Continuation::Lengths(LengthBinarySearch::new(candidates)),
                Inner::Stride(s) => match s.node_at_clue(&clue) {
                    // The clue determines at least one full level: resume
                    // below it.
                    Some(n) => Continuation::StrideNode(n),
                    // Clue shorter than the first stride: fall back to a
                    // full multibit walk from the root, which is what a
                    // missing continuation plus candidates would cost
                    // anyway. Encode as "walk the binary trie from the
                    // clue" — cheaper and always available.
                    None => Continuation::TrieNode(
                        self.t2.node_of_prefix(&clue).expect("problematic clue vertex exists"),
                    ),
                },
            }),
            _ => None,
        };
        ClueEntry { clue, fd, cont }
    }

    /// Learns a previously unseen clue (`procedure new-clue`).
    fn learn(&mut self, clue: Prefix<A>, index: Option<u16>) {
        if let Some(cap) = self.config.max_learned_entries {
            if self.table.len() >= cap {
                return; // flood guard: resolve but do not grow the table
            }
        }
        // The clue is a sender prefix by definition: grow our knowledge
        // first, then classify against it.
        self.sender.insert(clue);
        let entry = self.build_entry(clue);
        let index = match self.config.table_kind {
            TableKind::Hashed => None,
            // With the indexing technique the sender stamps the slot; a
            // clue arriving without one cannot be stored.
            TableKind::Indexed => match index {
                Some(i) => Some(i),
                None => return,
            },
        };
        self.table.insert(entry, index);
    }

    /// Rebuilds every table entry against the current sender knowledge.
    /// Useful in learning mode: early entries were classified against
    /// less knowledge and may be pessimistically problematic.
    pub fn reclassify_all(&mut self) {
        match self.config.table_kind {
            TableKind::Hashed => {
                let clues: Vec<Prefix<A>> = self.table.entries().map(|e| e.clue).collect();
                for clue in clues {
                    let entry = self.build_entry(clue);
                    self.table.insert(entry, None);
                }
            }
            TableKind::Indexed => {
                let slots: Vec<(u16, Prefix<A>)> =
                    self.table.entries_with_indices().map(|(i, e)| (i, e.clue)).collect();
                for (i, clue) in slots {
                    let entry = self.build_entry(clue);
                    self.table.insert(entry, Some(i));
                }
            }
        }
    }

    /// Adds a route to the receiver's table, updating the search
    /// structures and reclassifying the clue-table entries the change
    /// can affect (clues on the ancestor/descendant chain of `prefix`).
    ///
    /// The trie families update incrementally; the Binary/B-way/Log W
    /// index structures are rebuilt (they are precomputed arrays — the
    /// paper assumes reconstruction alongside routing-table updates).
    pub fn add_receiver_route(&mut self, prefix: Prefix<A>) {
        self.t2.insert(prefix, ());
        self.apply_receiver_change(&prefix, true);
    }

    /// Removes a route from the receiver's table; see
    /// [`Self::add_receiver_route`]. Returns `false` if it was absent.
    pub fn remove_receiver_route(&mut self, prefix: &Prefix<A>) -> bool {
        if self.t2.remove(prefix).is_none() {
            return false;
        }
        self.apply_receiver_change(prefix, false);
        true
    }

    /// Records that the sender announced a new prefix (it may now appear
    /// as a clue, and Claim 1 classifications along its chain change).
    pub fn add_sender_prefix(&mut self, prefix: Prefix<A>) {
        self.sender.insert(prefix);
        if !prefix.is_empty() && self.config.table_kind == TableKind::Hashed {
            let entry = self.build_entry(prefix);
            self.table.insert(entry, None);
        }
        self.reclassify_chain(&prefix);
        self.refresh_vertex_bits();
    }

    /// Records that the sender withdrew a prefix. The entry itself is
    /// kept (the paper suggests clues are never removed, only ignored);
    /// classifications that relied on it are loosened.
    pub fn remove_sender_prefix(&mut self, prefix: &Prefix<A>) {
        self.sender.remove(prefix);
        self.reclassify_chain(prefix);
        self.refresh_vertex_bits();
    }

    fn apply_receiver_change(&mut self, prefix: &Prefix<A>, _added: bool) {
        // Patricia updates incrementally; array-based indexes rebuild.
        let receiver: Vec<Prefix<A>> = self.t2.prefixes().collect();
        match &mut self.inner {
            Inner::Regular => {}
            Inner::Patricia(p) => {
                if _added {
                    p.insert(*prefix);
                } else {
                    p.remove(prefix);
                }
            }
            Inner::Ranges { index, .. } => *index = RangeIndex::new(receiver.iter().copied()),
            Inner::LogW(l) => *l = LengthBinarySearch::new(receiver.iter().copied()),
            Inner::Stride(s) => *s = StrideTrie::new(receiver.iter().copied()),
        }
        self.reclassify_chain(prefix);
        self.refresh_vertex_bits();
    }

    /// Rebuilds every clue-table entry on the ancestor/descendant chain
    /// of `changed` — the only entries whose FD, classification,
    /// continuation pointer or candidate set a single-prefix change can
    /// affect. (Trie vertices elsewhere are untouched by insert/remove
    /// pruning, so their stored `NodeId`s remain valid.)
    fn reclassify_chain(&mut self, changed: &Prefix<A>) {
        let related = |clue: &Prefix<A>| {
            clue.is_prefix_of(changed) || changed.is_prefix_of(clue)
        };
        match self.config.table_kind {
            TableKind::Hashed => {
                let clues: Vec<Prefix<A>> =
                    self.table.entries().map(|e| e.clue).filter(|c| related(c)).collect();
                for clue in clues {
                    let entry = self.build_entry(clue);
                    self.table.insert(entry, None);
                }
            }
            TableKind::Indexed => {
                let slots: Vec<(u16, Prefix<A>)> = self
                    .table
                    .entries_with_indices()
                    .filter(|(_, e)| related(&e.clue))
                    .map(|(i, e)| (i, e.clue))
                    .collect();
                for (i, clue) in slots {
                    let entry = self.build_entry(clue);
                    self.table.insert(entry, Some(i));
                }
            }
        }
    }

    /// Recomputes the Section 4 per-vertex Booleans if they are in use
    /// (their values can change anywhere under a modified chain, and the
    /// arena may have recycled vertices).
    fn refresh_vertex_bits(&mut self) {
        if self.bits_bin.is_some() {
            self.compute_vertex_bits();
        }
    }

    /// Computes the Section 4 per-vertex continuation Booleans for the
    /// trie families (Advance only): `bit[v]` is `true` iff some receiver
    /// prefix lies strictly below `v` with no sender prefix on the way.
    fn compute_vertex_bits(&mut self) {
        let knows = |p: &Prefix<A>| self.sender.contains(p);
        // Pre-order collection: ancestors precede descendants, so the
        // reversed order is a valid bottom-up schedule.
        let mut order = Vec::with_capacity(self.t2.node_count());
        self.t2.walk_subtree(self.t2.root(), |n| {
            order.push(n);
            true
        });
        let size = order.iter().map(|n| n.index() + 1).max().unwrap_or(1);
        let mut bits = vec![false; size];
        for &v in order.iter().rev() {
            let mut b = false;
            for c in self.t2.children(v).into_iter().flatten() {
                let cp = self.t2.node_prefix(c);
                if !knows(&cp) && (self.t2.is_marked(c) || bits[c.index()]) {
                    b = true;
                    break;
                }
            }
            bits[v.index()] = b;
        }

        if let Inner::Patricia(p) = &self.inner {
            // Project onto Patricia vertices via their labels.
            let mut pat_bits = vec![false; 0];
            let mut stack = vec![p.root()];
            while let Some(id) = stack.pop() {
                if pat_bits.len() <= id.index() {
                    pat_bits.resize(id.index() + 1, false);
                }
                let label = p.node_prefix(id);
                let bin = self
                    .t2
                    .node_of_prefix(&label)
                    .expect("Patricia label exists in the binary trie");
                pat_bits[id.index()] = bits[bin.index()];
                for c in p.children(id).into_iter().flatten() {
                    stack.push(c);
                }
            }
            self.bits_pat = Some(pat_bits);
        }
        self.bits_bin = Some(bits);
    }

    /// Bit-by-bit continuation walk that stops as soon as the per-vertex
    /// Boolean says no candidate lies below (Section 4).
    fn trie_walk_bits(
        &self,
        start: NodeId,
        bits: &[bool],
        dest: A,
        cost: &mut Cost,
    ) -> Option<Prefix<A>> {
        cost.trie_node();
        let mut cur = start;
        let mut best = self.t2.route_at(cur).map(|r| self.t2.prefix(r));
        loop {
            // Reading the Boolean is free: it lives in the vertex just
            // fetched.
            if !bits.get(cur.index()).copied().unwrap_or(false) {
                break;
            }
            let depth = self.t2.node_prefix(cur).len();
            if depth >= A::BITS {
                break;
            }
            let Some(c) = self.t2.children(cur)[dest.bit(depth) as usize] else {
                break;
            };
            cur = c;
            cost.trie_node();
            if let Some(r) = self.t2.route_at(cur) {
                best = Some(self.t2.prefix(r));
            }
        }
        best
    }

    /// Patricia continuation walk with the per-vertex Booleans.
    fn patricia_walk_bits(
        p: &PatriciaTrie<A>,
        bits: &[bool],
        loc: Location,
        dest: A,
        cost: &mut Cost,
    ) -> Option<Prefix<A>> {
        let (start, mut best) = match loc {
            Location::AtNode(id) => {
                cost.trie_node();
                let marked = p.is_marked(id).then(|| p.node_prefix(id));
                (id, marked)
            }
            Location::OnEdge { below, .. } => {
                cost.trie_node();
                let bp = p.node_prefix(below);
                if !bp.contains(dest) {
                    return None;
                }
                (below, p.is_marked(below).then_some(bp))
            }
            Location::Absent { .. } => return None,
        };
        let mut cur = start;
        loop {
            if !bits.get(cur.index()).copied().unwrap_or(false) {
                return best;
            }
            let depth = p.node_prefix(cur).len();
            if depth >= A::BITS {
                return best;
            }
            let Some(c) = p.children(cur)[dest.bit(depth) as usize] else {
                return best;
            };
            cost.trie_node();
            let cp = p.node_prefix(c);
            if !cp.contains(dest) {
                return best;
            }
            if p.is_marked(c) {
                best = Some(cp);
            }
            cur = c;
        }
    }
}
