//! The per-stage lookup profiler: predicted-vs-measured attribution.
//!
//! The paper's entire evaluation metric is *predicted* — [`Cost`] ticks
//! model memory references per lookup (Tables 4–9). This module
//! cross-validates that model against the machine: each engine exposes
//! a `lookup_profiled` variant that attributes every lookup's ticks,
//! measured nanoseconds and touched record bytes to a pipeline
//! [`Stage`], and accumulates per-stage running sums from which a
//! Pearson correlation between predicted ticks and measured time falls
//! out. A high per-stage correlation is empirical support for the
//! paper's claim that tick counts are the right cost model; a low one
//! flags a stage whose "one access" abstraction leaks (e.g. a probe
//! that is one tick but two dependent cache lines).
//!
//! **Profiling is opt-in by construction, not by flag**: the profiled
//! lookups are separate functions, so the normal paths compile without
//! a single profiling branch — disabled profiling costs literally
//! nothing. The profiled variants replicate the unprofiled control flow
//! exactly (same BMP, same class, tick-for-tick the same `Cost`);
//! `clue profile --check` and the parity tests in each engine hold
//! them to it.
//!
//! Timing is *span*-based: a stage is timed once per lookup with a
//! pair of `Instant` reads around its whole span, never per node —
//! per-visit timestamps would cost more than the visits themselves and
//! drown the signal in timer overhead.

use std::time::Instant;

use clue_trie::Cost;

/// A pipeline stage of a clue lookup, across all three engine
/// representations (scalar, frozen, stride).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The entry read: the stride engine's direct-indexed root slot, or
    /// the first trie vertex of a scalar/frozen common walk.
    Root,
    /// The descent below the entry: multibit inner-node steps (stride)
    /// or the remaining vertices of a common walk (scalar/frozen).
    Inner,
    /// The mandatory clue-table consult: hash probe (scalar/frozen) or
    /// flat length-bucket probe (stride).
    ClueProbe,
    /// The continued walk from the clue's continuation vertex,
    /// honoring the Section 4 Claim-1 bits.
    Continuation,
    /// The Section 3.5 presence-cache read in front of the clue table
    /// (scalar engine only).
    Cache,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub fn all() -> [Stage; 5] {
        [Stage::Root, Stage::Inner, Stage::ClueProbe, Stage::Continuation, Stage::Cache]
    }

    /// Stable snake_case label (JSON keys, metric names).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Root => "root",
            Stage::Inner => "inner",
            Stage::ClueProbe => "clue_probe",
            Stage::Continuation => "continuation",
            Stage::Cache => "cache",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Root => 0,
            Stage::Inner => 1,
            Stage::ClueProbe => 2,
            Stage::Continuation => 3,
            Stage::Cache => 4,
        }
    }
}

/// Running sums for a Pearson correlation between two series, mergeable
/// across profilers (all five moments are plain sums).
#[derive(Debug, Default, Clone, Copy)]
struct Corr {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
}

impl Corr {
    #[inline]
    fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
    }

    fn merge(&mut self, o: &Corr) {
        self.n += o.n;
        self.sx += o.sx;
        self.sy += o.sy;
        self.sxx += o.sxx;
        self.syy += o.syy;
        self.sxy += o.sxy;
    }

    /// Pearson r, `None` when undefined (fewer than two points, or a
    /// constant series — e.g. a stage that always costs exactly one
    /// tick has zero x-variance and no meaningful correlation).
    fn r(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let cov = self.sxy - self.sx * self.sy / n;
        let vx = self.sxx - self.sx * self.sx / n;
        let vy = self.syy - self.sy * self.sy / n;
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some(cov / (vx * vy).sqrt())
    }
}

/// Accumulated attribution for one [`Stage`].
#[derive(Debug, Default, Clone, Copy)]
pub struct StageAccum {
    /// Lookups that exercised this stage (≤ 1 event per lookup).
    pub visits: u64,
    /// Predicted [`Cost`] ticks attributed to the stage.
    pub ticks: u64,
    /// Engine-record bytes the stage dereferenced, per the layout model
    /// (`size_of` of the records actually walked).
    pub bytes: u64,
    /// Measured wall-clock nanoseconds across the stage's spans.
    pub nanos: u64,
    corr: Corr,
}

impl StageAccum {
    /// Measured nanoseconds per predicted tick (the stage's empirical
    /// cost of one modeled memory access); `None` with no ticks.
    pub fn ns_per_tick(&self) -> Option<f64> {
        (self.ticks > 0).then(|| self.nanos as f64 / self.ticks as f64)
    }

    /// Mean predicted ticks per visit.
    pub fn ticks_per_visit(&self) -> Option<f64> {
        (self.visits > 0).then(|| self.ticks as f64 / self.visits as f64)
    }

    /// Pearson correlation between per-event predicted ticks and
    /// measured nanoseconds; `None` when undefined (see [`Corr::r`]).
    pub fn correlation(&self) -> Option<f64> {
        self.corr.r()
    }
}

/// Accumulates per-stage and per-lookup attribution; the object a
/// profiled run threads through `lookup_profiled` calls and merges
/// across threads at the end.
#[derive(Debug, Default, Clone)]
pub struct StageProfiler {
    stages: [StageAccum; 5],
    lookups: u64,
    lookup_corr: Corr,
}

impl StageProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stage event: `ticks` predicted accesses, `bytes`
    /// record bytes, `nanos` measured for the stage's span.
    #[inline]
    pub fn record(&mut self, stage: Stage, ticks: u64, bytes: u64, nanos: u64) {
        let s = &mut self.stages[stage.index()];
        s.visits += 1;
        s.ticks += ticks;
        s.bytes += bytes;
        s.nanos += nanos;
        s.corr.push(ticks as f64, nanos as f64);
    }

    /// Records one whole lookup (total predicted ticks vs total
    /// measured nanoseconds) for the cross-stage correlation.
    #[inline]
    pub fn record_lookup(&mut self, ticks: u64, nanos: u64) {
        self.lookups += 1;
        self.lookup_corr.push(ticks as f64, nanos as f64);
    }

    /// Folds `other` into this profiler (per-thread profilers merged at
    /// scrape/report time — same pattern as the sharded telemetry).
    pub fn merge(&mut self, other: &StageProfiler) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.visits += b.visits;
            a.ticks += b.ticks;
            a.bytes += b.bytes;
            a.nanos += b.nanos;
            a.corr.merge(&b.corr);
        }
        self.lookups += other.lookups;
        self.lookup_corr.merge(&other.lookup_corr);
    }

    /// The accumulated attribution for `stage`.
    pub fn stage(&self, stage: Stage) -> &StageAccum {
        &self.stages[stage.index()]
    }

    /// Lookups recorded via [`Self::record_lookup`].
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total predicted ticks across all stages.
    pub fn total_ticks(&self) -> u64 {
        self.stages.iter().map(|s| s.ticks).sum()
    }

    /// Total record bytes across all stages.
    pub fn total_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.bytes).sum()
    }

    /// Total measured nanoseconds across all stage spans.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Mean record bytes touched per lookup.
    pub fn bytes_per_lookup(&self) -> Option<f64> {
        (self.lookups > 0).then(|| self.total_bytes() as f64 / self.lookups as f64)
    }

    /// Pearson correlation between each lookup's total predicted ticks
    /// and its total measured nanoseconds — the headline
    /// predicted-vs-measured number.
    pub fn lookup_correlation(&self) -> Option<f64> {
        self.lookup_corr.r()
    }
}

/// A running span timer for one stage: created at the stage boundary,
/// [`Self::stop`]ped at the end, yielding elapsed nanoseconds.
#[derive(Debug)]
pub(crate) struct Span(Instant);

impl Span {
    #[inline]
    pub(crate) fn start() -> Self {
        Span(Instant::now())
    }

    #[inline]
    pub(crate) fn stop(self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Splits a common-walk span between [`Stage::Root`] (the first
/// charged vertex) and [`Stage::Inner`] (the rest), attributing time
/// proportionally to ticks: the walk is timed once — per-vertex
/// timestamps would dwarf the vertices — so the split follows the
/// model.  `delta` is the walk's total cost delta, `nanos` its span,
/// `bytes_per_tick` the record size the walk dereferences per tick.
pub(crate) fn record_walk_split(
    prof: &mut StageProfiler,
    delta: &Cost,
    nanos: u64,
    bytes_per_tick: u64,
) {
    let ticks = delta.total();
    if ticks == 0 {
        return;
    }
    let root_ns = nanos / ticks;
    prof.record(Stage::Root, 1, bytes_per_tick, root_ns);
    if ticks > 1 {
        prof.record(Stage::Inner, ticks - 1, bytes_per_tick * (ticks - 1), nanos - root_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_have_stable_labels_and_order() {
        let labels: Vec<_> = Stage::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["root", "inner", "clue_probe", "continuation", "cache"]);
        for (i, s) in Stage::all().into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn record_accumulates_per_stage() {
        let mut p = StageProfiler::new();
        p.record(Stage::Root, 1, 12, 100);
        p.record(Stage::Root, 1, 12, 120);
        p.record(Stage::Continuation, 5, 60, 900);
        let root = p.stage(Stage::Root);
        assert_eq!((root.visits, root.ticks, root.bytes, root.nanos), (2, 2, 24, 220));
        assert_eq!(root.ns_per_tick(), Some(110.0));
        assert_eq!(p.total_ticks(), 7);
        assert_eq!(p.total_bytes(), 84);
        assert_eq!(p.total_nanos(), 1120);
        assert_eq!(p.stage(Stage::Cache).visits, 0);
    }

    #[test]
    fn perfect_linear_series_correlates_to_one() {
        let mut p = StageProfiler::new();
        for t in 1..=10u64 {
            p.record(Stage::Continuation, t, 0, t * 50);
            p.record_lookup(t, t * 50);
        }
        let r = p.stage(Stage::Continuation).correlation().unwrap();
        assert!((r - 1.0).abs() < 1e-9, "got {r}");
        let r = p.lookup_correlation().unwrap();
        assert!((r - 1.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn constant_series_has_no_correlation() {
        let mut p = StageProfiler::new();
        for _ in 0..10 {
            p.record(Stage::ClueProbe, 1, 16, 40); // always one tick
        }
        assert_eq!(p.stage(Stage::ClueProbe).correlation(), None);
        assert_eq!(p.stage(Stage::ClueProbe).ticks_per_visit(), Some(1.0));
        let mut empty = StageProfiler::new();
        empty.record(Stage::Root, 1, 0, 5);
        assert_eq!(empty.stage(Stage::Root).correlation(), None, "one point");
    }

    #[test]
    fn anticorrelated_series_is_negative() {
        let mut p = StageProfiler::new();
        for t in 1..=10u64 {
            p.record(Stage::Inner, t, 0, (11 - t) * 30);
        }
        let r = p.stage(Stage::Inner).correlation().unwrap();
        assert!((r + 1.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn merge_equals_single_accumulation() {
        let mut whole = StageProfiler::new();
        let mut a = StageProfiler::new();
        let mut b = StageProfiler::new();
        for t in 1..=20u64 {
            let (stage, ns) = (Stage::Root, t * 7 + t % 3);
            whole.record(stage, t, t * 12, ns);
            whole.record_lookup(t, ns);
            let half = if t % 2 == 0 { &mut a } else { &mut b };
            half.record(stage, t, t * 12, ns);
            half.record_lookup(t, ns);
        }
        a.merge(&b);
        assert_eq!(a.lookups(), whole.lookups());
        assert_eq!(a.total_ticks(), whole.total_ticks());
        assert_eq!(a.total_bytes(), whole.total_bytes());
        assert_eq!(a.total_nanos(), whole.total_nanos());
        let (ra, rw) = (a.lookup_correlation().unwrap(), whole.lookup_correlation().unwrap());
        assert!((ra - rw).abs() < 1e-12, "merged correlation must match: {ra} vs {rw}");
    }

    #[test]
    fn walk_split_attributes_root_then_inner() {
        let mut p = StageProfiler::new();
        let mut delta = Cost::new();
        for _ in 0..4 {
            delta.trie_node();
        }
        record_walk_split(&mut p, &delta, 400, 12);
        assert_eq!(p.stage(Stage::Root).ticks, 1);
        assert_eq!(p.stage(Stage::Root).nanos, 100);
        assert_eq!(p.stage(Stage::Root).bytes, 12);
        assert_eq!(p.stage(Stage::Inner).ticks, 3);
        assert_eq!(p.stage(Stage::Inner).nanos, 300);
        assert_eq!(p.stage(Stage::Inner).bytes, 36);

        // A one-tick walk is all Root, no Inner.
        let mut p = StageProfiler::new();
        let mut one = Cost::new();
        one.trie_node();
        record_walk_split(&mut p, &one, 50, 12);
        assert_eq!(p.stage(Stage::Root).ticks, 1);
        assert_eq!(p.stage(Stage::Inner).visits, 0);

        // An empty walk records nothing.
        let mut p = StageProfiler::new();
        record_walk_split(&mut p, &Cost::new(), 50, 12);
        assert_eq!(p.stage(Stage::Root).visits, 0);
    }

    #[test]
    fn bytes_per_lookup_averages() {
        let mut p = StageProfiler::new();
        p.record(Stage::Root, 1, 12, 10);
        p.record(Stage::ClueProbe, 1, 28, 10);
        p.record_lookup(2, 20);
        p.record_lookup(2, 20);
        assert_eq!(p.bytes_per_lookup(), Some(20.0));
        assert_eq!(StageProfiler::new().bytes_per_lookup(), None);
    }
}
