//! Property tests for the stride-compiled fast path: over arbitrary
//! table pairs, stride shapes and workloads (honest, missing and
//! malformed clues alike), [`StrideEngine`] must be indistinguishable
//! from both the scalar [`ClueEngine`] and the [`FrozenEngine`] it was
//! compiled from — same BMPs, same [`LookupClass`], same per-packet
//! [`Cost`] tick for tick — at every interleave group size.

use clue_core::{ClueEngine, EngineConfig, FrozenEngine, Method, StrideConfig, StrideEngine};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{Cost, Ip4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..256, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(20), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 24 | bits << 16 | bits << 4), len))
}

fn arb_tables() -> impl Strategy<Value = (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>)> {
    (
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 0..20),
    )
        .prop_map(|(shared, s_only, r_only)| {
            let sender: Vec<_> = shared.union(&s_only).copied().collect();
            let receiver: Vec<_> = shared.union(&r_only).copied().collect();
            (sender, receiver)
        })
}

/// Random but structurally valid stride shapes, including degenerate
/// ones (1-bit root, tiny inner chunks, chunks that do not divide the
/// remaining width evenly).
fn arb_stride() -> impl Strategy<Value = StrideConfig> {
    (1u8..=20, 1u8..=16).prop_map(|(initial, inner)| StrideConfig::new(initial, inner))
}

/// Destinations biased into covered space so every lookup class shows
/// up, plus honest clues (with occasional raw-bit malformed ones).
fn workload(sender: &[Prefix<Ip4>], raws: &[u32]) -> (Vec<Ip4>, Vec<Option<Prefix<Ip4>>>) {
    let mut dests = Vec::with_capacity(raws.len());
    let mut clues = Vec::with_capacity(raws.len());
    for (i, &r) in raws.iter().enumerate() {
        let dest = if i % 2 == 0 {
            let p = sender[i % sender.len()];
            let noise = if p.len() == 32 { 0 } else { r >> p.len() };
            Ip4(p.bits().0 | noise)
        } else {
            Ip4(r)
        };
        let clue = match i % 5 {
            // Malformed: a clue string unrelated to the destination.
            4 => Some(Prefix::new(Ip4(!dest.0), 16)).filter(|c| !c.contains(dest)),
            _ => reference_bmp(sender, dest).filter(|c| !c.is_empty()),
        };
        dests.push(dest);
        clues.push(clue);
    }
    (dests, clues)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stride decisions equal both the scalar engine's and the frozen
    /// engine's — BMP, class and cost — for every method and a random
    /// stride shape.
    #[test]
    fn stride_matches_scalar_and_frozen(
        (sender, receiver) in arb_tables(),
        config in arb_stride(),
        raws in proptest::collection::vec(any::<u32>(), 1..25),
    ) {
        let (dests, clues) = workload(&sender, &raws);
        for method in [Method::Common, Method::Simple, Method::Advance] {
            let mut scalar = ClueEngine::precomputed(
                &sender, &receiver, EngineConfig::new(Family::Regular, method));
            let frozen: FrozenEngine<Ip4> = scalar.freeze().unwrap();
            let stride: StrideEngine<Ip4> = frozen.compile_stride(config).unwrap();
            let mut out = vec![Default::default(); dests.len()];
            let stats = stride.lookup_batch(&dests, &clues, &mut out);
            for ((&dest, &clue), d) in dests.iter().zip(&clues).zip(&out) {
                let mut cost = Cost::new();
                let want = scalar.lookup(dest, clue, None, &mut cost);
                prop_assert_eq!(
                    d.bmp, want, "{} {:?} dest {} clue {:?}", method, config, dest, clue);
                prop_assert_eq!(
                    d.cost, cost, "{} {:?} dest {} clue {:?}", method, config, dest, clue);
                let f = frozen.lookup_decision(dest, clue);
                prop_assert_eq!(d, &f, "stride != frozen for dest {} clue {:?}", dest, clue);
            }
            // Same packets, same classes: the scalar engine's running
            // tallies must equal the batch's return.
            prop_assert_eq!(stats, scalar.stats());
        }
    }

    /// The interleave group is semantically inert: every group size
    /// (prefetch off, default, clamped-large) yields bit-identical
    /// decisions and stats.
    #[test]
    fn interleave_group_is_inert(
        (sender, receiver) in arb_tables(),
        config in arb_stride(),
        raws in proptest::collection::vec(any::<u32>(), 1..20),
        group in prop_oneof![Just(0usize), Just(1), Just(3), Just(8), Just(200)],
    ) {
        let (dests, clues) = workload(&sender, &raws);
        let engine = ClueEngine::precomputed(
            &sender, &receiver, EngineConfig::new(Family::Regular, Method::Advance));
        let frozen = engine.freeze().unwrap();
        let stride = frozen.compile_stride(config).unwrap();
        let (baseline, s1) = stride.lookup_batch_vec(&dests, &clues);
        let mut out = vec![Default::default(); dests.len()];
        let s2 = stride.lookup_batch_interleaved(&dests, &clues, &mut out, group);
        prop_assert_eq!(&baseline, &out, "group {} diverged", group);
        prop_assert_eq!(s1, s2);
    }
}
