//! Property tests for the clue machinery: arbitrary table pairs, honest
//! clues, every method/family combination — the invariant is always
//! “clues change cost, never the result”.

use clue_core::{classify, ClueEngine, Classification, EngineConfig, Method};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{BinaryTrie, Cost, Ip4, Prefix};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..256, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(20), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 24 | bits << 16 | bits << 4), len))
}

fn arb_tables() -> impl Strategy<Value = (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>)> {
    (
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 0..20),
    )
        .prop_map(|(shared, s_only, r_only)| {
            let sender: Vec<_> = shared.union(&s_only).copied().collect();
            let receiver: Vec<_> = shared.union(&r_only).copied().collect();
            (sender, receiver)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every (family × method) combination returns the receiver's true
    /// BMP for every destination, given the sender's honest clue.
    #[test]
    fn engines_always_return_the_reference_bmp(
        (sender, receiver) in arb_tables(),
        raw_dests in proptest::collection::vec(any::<u32>(), 1..25),
    ) {
        // Destinations biased into covered space.
        let dests: Vec<Ip4> = raw_dests
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if i % 2 == 0 && !sender.is_empty() {
                    let p = sender[i % sender.len()];
                    let noise = if p.len() == 32 { 0 } else { r >> p.len() };
                    Ip4(p.bits().0 | noise)
                } else {
                    Ip4(r)
                }
            })
            .collect();
        for family in Family::all_extended() {
            for method in [Method::Simple, Method::Advance] {
                let mut engine = ClueEngine::precomputed(
                    &sender, &receiver, EngineConfig::new(family, method));
                for &dest in &dests {
                    let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
                    let mut cost = Cost::new();
                    let got = engine.lookup(dest, clue, None, &mut cost);
                    prop_assert_eq!(
                        got,
                        reference_bmp(&receiver, dest),
                        "{}/{} dest {} clue {:?}", family, method, dest, clue
                    );
                    if clue.is_some() {
                        prop_assert!(cost.total() >= 1);
                    }
                }
            }
        }
    }

    /// Claim 1 soundness: when the classifier says a clue is covered, no
    /// honestly-clued destination can have a longer receiver BMP.
    #[test]
    fn claim1_never_finalises_wrongly(
        (sender, receiver) in arb_tables(),
        raw in any::<u32>(),
    ) {
        let t2: BinaryTrie<Ip4, ()> = receiver.iter().map(|p| (*p, ())).collect();
        let sset: HashSet<Prefix<Ip4>> = sender.iter().copied().collect();
        for clue in &sender {
            if clue.is_empty() { continue; }
            let cls = classify(clue, &t2, &|p| sset.contains(p));
            if matches!(cls, Classification::Problematic { .. }) { continue; }
            // Build a destination honestly clued with `clue`: it must
            // match the clue and nothing longer in the *sender's* table.
            let noise = if clue.len() == 32 { 0 } else { raw >> clue.len() };
            let dest = Ip4(clue.bits().0 | noise);
            if reference_bmp(&sender, dest) != Some(*clue) { continue; }
            // The final decision (BMP of the clue string) must equal the
            // receiver's true BMP for dest.
            let fd = cls.fd();
            prop_assert_eq!(
                fd, reference_bmp(&receiver, dest),
                "covered clue {} finalised wrongly for {}", clue, dest
            );
        }
    }

    /// The candidate set is complete: for a problematic clue, any
    /// honestly-clued destination whose receiver BMP is longer than the
    /// clue finds that BMP **inside the candidate set**.
    #[test]
    fn candidate_sets_are_complete(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..16),
    ) {
        let t2: BinaryTrie<Ip4, ()> = receiver.iter().map(|p| (*p, ())).collect();
        let sset: HashSet<Prefix<Ip4>> = sender.iter().copied().collect();
        for clue in &sender {
            if clue.is_empty() { continue; }
            let cls = classify(clue, &t2, &|p| sset.contains(p));
            for &raw in &raws {
                let noise = if clue.len() == 32 { 0 } else { raw >> clue.len() };
                let dest = Ip4(clue.bits().0 | noise);
                if reference_bmp(&sender, dest) != Some(*clue) { continue; }
                let bmp = reference_bmp(&receiver, dest);
                if let Some(b) = bmp {
                    if b.len() > clue.len() {
                        prop_assert!(
                            cls.candidates().contains(&b),
                            "BMP {} of {} missing from candidates of clue {}", b, dest, clue
                        );
                    }
                }
            }
        }
    }

    /// Learning engines never disagree with precomputed ones on results,
    /// regardless of the packet order that trained them.
    #[test]
    fn learning_equals_precomputed_results(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let cfg = EngineConfig::new(Family::Patricia, Method::Advance);
        let mut pre = ClueEngine::precomputed(&sender, &receiver, cfg);
        let mut learn = ClueEngine::learning(&receiver, cfg);
        for (i, &raw) in raws.iter().enumerate() {
            let p = sender[i % sender.len()];
            let noise = if p.len() == 32 { 0 } else { raw >> p.len() };
            let dest = Ip4(p.bits().0 | noise);
            let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
            let a = pre.lookup(dest, clue, None, &mut Cost::new());
            let b = learn.lookup(dest, clue, None, &mut Cost::new());
            prop_assert_eq!(a, b, "dest {}", dest);
        }
    }

    /// FD contract: the FD of any classification is the receiver's BMP
    /// of the clue string itself.
    #[test]
    fn fd_is_bmp_of_clue_string((sender, receiver) in arb_tables()) {
        let t2: BinaryTrie<Ip4, ()> = receiver.iter().map(|p| (*p, ())).collect();
        let sset: HashSet<Prefix<Ip4>> = sender.iter().copied().collect();
        for clue in &sender {
            if clue.is_empty() { continue; }
            let cls = classify(clue, &t2, &|p| sset.contains(p));
            let want = receiver
                .iter()
                .filter(|p| p.is_prefix_of(clue))
                .max_by_key(|p| p.len())
                .copied();
            prop_assert_eq!(cls.fd(), want, "clue {}", clue);
        }
    }
}
