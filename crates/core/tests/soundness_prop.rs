//! Property tests for the soundness invariant (see
//! `clue_core::check_soundness`): generated tables, generated traffic,
//! and clue streams ranging from honest to adversarial.
//!
//! * the Simple method must be sound for **arbitrary** clues — any
//!   prefix value at all, from any epoch, malformed included;
//! * the Advance method must be sound for **epoch-consistent** clues
//!   (the sender's true BMP from the table the engine was precomputed
//!   against — the discipline the churn driver maintains);
//! * malformed clues are counted exactly once per packet, identically
//!   by the scalar engine and the frozen batch path.

use clue_core::{check_soundness, ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_trie::{BinaryTrie, Ip4, Prefix};
use proptest::prelude::*;

/// A generated prefix table: addresses spread over the top octets so
/// tables overlap enough to produce nested prefixes and shared clues.
fn table(max: usize) -> impl Strategy<Value = Vec<Prefix<Ip4>>> {
    proptest::collection::vec((any::<u32>(), 1u8..=28), 1..max)
        .prop_map(|raw| raw.into_iter().map(|(a, l)| Prefix::new(Ip4(a), l)).collect())
}

/// Any clue at all: possibly absent, possibly unrelated to anything.
fn wild_clues(packets: usize) -> impl Strategy<Value = Vec<Option<Prefix<Ip4>>>> {
    proptest::collection::vec(
        proptest::option::of((any::<u32>(), 1u8..=32)),
        packets..=packets,
    )
    .prop_map(|raw| {
        raw.into_iter().map(|c| c.map(|(a, l)| Prefix::new(Ip4(a), l))).collect()
    })
}

fn engine(
    sender: &[Prefix<Ip4>],
    receiver: &[Prefix<Ip4>],
    method: Method,
) -> ClueEngine<Ip4> {
    ClueEngine::precomputed(sender, receiver, EngineConfig::new(Family::Regular, method))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simple_is_sound_for_arbitrary_clues(
        sender in table(24),
        receiver in table(24),
        dests in proptest::collection::vec(any::<u32>(), 1..24),
        clues in wild_clues(24),
    ) {
        let dests: Vec<Ip4> = dests.into_iter().map(Ip4).collect();
        let clues = &clues[..dests.len()];
        let mut engine = engine(&sender, &receiver, Method::Simple);
        let frozen = engine.freeze().unwrap();
        let report = check_soundness(&mut engine, &frozen, &dests, clues);
        prop_assert!(report.is_sound(), "divergences: {:?}", report.divergences);
        prop_assert!(
            report.stats_parity(),
            "scalar {:?} != frozen {:?}",
            report.scalar_stats,
            report.frozen_stats
        );
    }

    #[test]
    fn advance_is_sound_for_epoch_consistent_clues(
        sender in table(24),
        receiver in table(24),
        dests in proptest::collection::vec(any::<u32>(), 1..24),
    ) {
        let dests: Vec<Ip4> = dests.into_iter().map(Ip4).collect();
        let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
        let clues: Vec<Option<Prefix<Ip4>>> = dests
            .iter()
            .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
            .collect();
        let mut engine = engine(&sender, &receiver, Method::Advance);
        let frozen = engine.freeze().unwrap();
        let report = check_soundness(&mut engine, &frozen, &dests, &clues);
        prop_assert!(report.is_sound(), "divergences: {:?}", report.divergences);
        prop_assert!(report.stats_parity());
    }

    #[test]
    fn malformed_clues_count_exactly_once_on_both_paths(
        sender in table(16),
        receiver in table(16),
        dests in proptest::collection::vec(any::<u32>(), 1..16),
        lens in proptest::collection::vec(8u8..=24, 16),
    ) {
        // Bitwise-complemented destinations guarantee non-containing
        // clues: every packet must take the malformed-fallback path and
        // be counted exactly once by scalar and frozen alike.
        let dests: Vec<Ip4> = dests.into_iter().map(Ip4).collect();
        let clues: Vec<Option<Prefix<Ip4>>> = dests
            .iter()
            .zip(&lens)
            .map(|(&d, &l)| Some(Prefix::new(Ip4(!d.0), l)))
            .collect();
        let mut engine = engine(&sender, &receiver, Method::Simple);
        let frozen = engine.freeze().unwrap();
        let report = check_soundness(&mut engine, &frozen, &dests, &clues);
        prop_assert!(report.is_sound());
        prop_assert_eq!(report.scalar_stats.malformed, report.checked);
        prop_assert_eq!(report.frozen_stats.malformed, report.checked);
        prop_assert!(report.stats_parity());
    }
}
