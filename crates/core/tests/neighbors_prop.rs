//! Property tests for the Section 3.4 multi-neighbor sharing
//! strategies: all four must return the receiver's true BMP for every
//! neighbor, clue and destination.

use clue_core::neighbors::{MultiNeighborTable, Strategy as Sharing};
use clue_lookup::reference_bmp;
use clue_trie::{Cost, Ip4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..64, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 26 | bits << 10), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_strategies_agree_with_reference(
        receiver in proptest::collection::hash_set(arb_prefix(), 1..30),
        s1 in proptest::collection::hash_set(arb_prefix(), 1..20),
        s2 in proptest::collection::hash_set(arb_prefix(), 1..20),
        s3 in proptest::collection::hash_set(arb_prefix(), 0..10),
        raws in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let receiver: Vec<Prefix<Ip4>> = receiver.into_iter().collect();
        let senders: Vec<Vec<Prefix<Ip4>>> = [s1, s2, s3]
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let tables: Vec<MultiNeighborTable<Ip4>> = Sharing::all()
            .into_iter()
            .map(|st| MultiNeighborTable::build(&receiver, &senders, st))
            .collect();
        for (j, sender) in senders.iter().enumerate() {
            for (k, &raw) in raws.iter().enumerate() {
                // Bias half the destinations into the sender's space.
                let dest = if k % 2 == 0 && !sender.is_empty() {
                    let q = sender[k % sender.len()];
                    let noise = if q.len() == 32 { 0 } else { raw >> q.len() };
                    Ip4(q.bits().0 | noise)
                } else {
                    Ip4(raw)
                };
                let clue = reference_bmp(sender, dest).filter(|c| !c.is_empty());
                let want = reference_bmp(&receiver, dest);
                for (t, st) in tables.iter().zip(Sharing::all()) {
                    let mut cost = Cost::new();
                    let got = t.lookup(j, dest, clue, &mut cost);
                    prop_assert_eq!(
                        got, want,
                        "strategy {} neighbor {} dest {} clue {:?}", st, j, dest, clue
                    );
                    if clue.is_some() {
                        prop_assert!(cost.total() >= 1);
                        // Sub-tables may probe twice; nothing probes more.
                        prop_assert!(cost.hash_probes <= 2);
                    }
                }
            }
        }
    }

    /// Space ordering invariant: union ≤ bitmap ≤ separate, and
    /// sub-tables never exceed separate.
    #[test]
    fn memory_ordering_holds(
        receiver in proptest::collection::hash_set(arb_prefix(), 1..30),
        s1 in proptest::collection::hash_set(arb_prefix(), 1..20),
        s2 in proptest::collection::hash_set(arb_prefix(), 1..20),
    ) {
        let receiver: Vec<Prefix<Ip4>> = receiver.into_iter().collect();
        let senders: Vec<Vec<Prefix<Ip4>>> =
            [s1, s2].into_iter().map(|s| s.into_iter().collect()).collect();
        let size = |st: Sharing| {
            MultiNeighborTable::build(&receiver, &senders, st).memory_bytes_model()
        };
        let (sep, uni, bm, sub) = (
            size(Sharing::Separate),
            size(Sharing::Union),
            size(Sharing::Bitmap),
            size(Sharing::SubTables),
        );
        prop_assert!(uni <= bm, "union {} > bitmap {}", uni, bm);
        prop_assert!(uni <= sep, "union {} > separate {}", uni, sep);
        prop_assert!(sub <= sep + bm, "sub-tables {} unexpectedly large", sub);
    }
}
