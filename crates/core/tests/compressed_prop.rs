//! Property tests for the entropy-compressed compiled backend: over
//! arbitrary table pairs and workloads (honest, missing and malformed
//! clues alike), [`CompressedEngine`] must be indistinguishable from
//! both the scalar [`ClueEngine`] and the [`FrozenEngine`] it was
//! compiled from — same BMPs, same [`LookupClass`], same per-packet
//! [`Cost`] tick for tick — at every interleave group size. The table
//! strategy deliberately mixes in the structures the leaf-pushed
//! bitmap layout finds hardest: the default route, full-length /32
//! hosts, and aggregable sibling pairs.

use clue_core::{ClueEngine, CompressedConfig, CompressedEngine, EngineConfig, FrozenEngine, Method};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{Cost, Ip4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..256, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(20), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 24 | bits << 16 | bits << 4), len))
}

/// Tables seasoned with the bitmap layout's edge structures: sometimes
/// a default route (depth-0 route bit), sometimes /32 hosts (deepest
/// possible vertices), sometimes an aggregable sibling pair (both
/// children of one vertex routed — the classic leaf-push hazard).
fn arb_tables() -> impl Strategy<Value = (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>)> {
    (
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 0..20),
        any::<bool>(),
        proptest::collection::vec(any::<u32>(), 0..3),
        (any::<u32>(), 0u8..31),
    )
        .prop_map(|(shared, s_only, r_only, default_route, hosts, (sib, sib_len))| {
            let mut sender: Vec<_> = shared.union(&s_only).copied().collect();
            let mut receiver: Vec<_> = shared.union(&r_only).copied().collect();
            if default_route {
                sender.push(Prefix::new(Ip4(0), 0));
                receiver.push(Prefix::new(Ip4(0), 0));
            }
            for h in hosts {
                receiver.push(Prefix::new(Ip4(h), 32));
            }
            // Sibling pair: p0 and p1 differ only in bit `sib_len`.
            let p0 = Prefix::new(Ip4(sib & !(1 << (31 - sib_len))), sib_len + 1);
            let p1 = Prefix::new(Ip4(sib | (1 << (31 - sib_len))), sib_len + 1);
            receiver.push(p0);
            receiver.push(p1);
            sender.push(p0);
            sender.dedup();
            receiver.dedup();
            (sender, receiver)
        })
}

/// Destinations biased into covered space so every lookup class shows
/// up, plus honest clues (with occasional raw-bit malformed ones).
fn workload(sender: &[Prefix<Ip4>], raws: &[u32]) -> (Vec<Ip4>, Vec<Option<Prefix<Ip4>>>) {
    let mut dests = Vec::with_capacity(raws.len());
    let mut clues = Vec::with_capacity(raws.len());
    for (i, &r) in raws.iter().enumerate() {
        let dest = if i % 2 == 0 {
            let p = sender[i % sender.len()];
            let noise = if p.len() == 32 { 0 } else { r >> p.len() };
            Ip4(p.bits().0 | noise)
        } else {
            Ip4(r)
        };
        let clue = match i % 5 {
            // Malformed: a clue string unrelated to the destination.
            4 => Some(Prefix::new(Ip4(!dest.0), 16)).filter(|c| !c.contains(dest)),
            _ => reference_bmp(sender, dest).filter(|c| !c.is_empty()),
        };
        dests.push(dest);
        clues.push(clue);
    }
    (dests, clues)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compressed decisions equal both the scalar engine's and the
    /// frozen engine's — BMP, class and cost — for every method.
    #[test]
    fn compressed_matches_scalar_and_frozen(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..25),
    ) {
        let (dests, clues) = workload(&sender, &raws);
        for method in [Method::Common, Method::Simple, Method::Advance] {
            let mut scalar = ClueEngine::precomputed(
                &sender, &receiver, EngineConfig::new(Family::Regular, method));
            let frozen: FrozenEngine<Ip4> = scalar.freeze().unwrap();
            let compressed: CompressedEngine<Ip4> =
                frozen.compile_compressed(CompressedConfig);
            let mut out = vec![Default::default(); dests.len()];
            let stats = compressed.lookup_batch(&dests, &clues, &mut out);
            for ((&dest, &clue), d) in dests.iter().zip(&clues).zip(&out) {
                let mut cost = Cost::new();
                let want = scalar.lookup(dest, clue, None, &mut cost);
                prop_assert_eq!(
                    d.bmp, want, "{} dest {} clue {:?}", method, dest, clue);
                prop_assert_eq!(
                    d.cost, cost, "{} dest {} clue {:?}", method, dest, clue);
                let f = frozen.lookup_decision(dest, clue);
                prop_assert_eq!(d, &f, "compressed != frozen for dest {} clue {:?}", dest, clue);
            }
            // Same packets, same classes: the scalar engine's running
            // tallies must equal the batch's return.
            prop_assert_eq!(stats, scalar.stats());
        }
    }

    /// The interleave group is semantically inert: every group size
    /// (prefetch off, default, clamped-large) yields bit-identical
    /// decisions and stats.
    #[test]
    fn interleave_group_is_inert(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..20),
        group in prop_oneof![Just(0usize), Just(1), Just(3), Just(8), Just(200)],
    ) {
        let (dests, clues) = workload(&sender, &raws);
        let engine = ClueEngine::precomputed(
            &sender, &receiver, EngineConfig::new(Family::Regular, Method::Advance));
        let compressed = engine.freeze_compressed(CompressedConfig).unwrap();
        let (baseline, s1) = compressed.lookup_batch_vec(&dests, &clues);
        let mut out = vec![Default::default(); dests.len()];
        let s2 = compressed.lookup_batch_interleaved(&dests, &clues, &mut out, group);
        prop_assert_eq!(&baseline, &out, "group {} diverged", group);
        prop_assert_eq!(s1, s2);
    }

    /// The route-tag path resolves to the same prefix as the full
    /// lookup, and tags index the shared dictionary consistently with
    /// the frozen backend's tags.
    #[test]
    fn tags_agree_with_frozen(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..15),
    ) {
        let (dests, clues) = workload(&sender, &raws);
        let engine = ClueEngine::precomputed(
            &sender, &receiver, EngineConfig::new(Family::Regular, Method::Advance));
        let frozen = engine.freeze().unwrap();
        let compressed = frozen.compile_compressed(CompressedConfig);
        prop_assert_eq!(compressed.tag_prefixes(), frozen.tag_prefixes());
        for (&dest, &clue) in dests.iter().zip(&clues) {
            let mut cost = Cost::new();
            let op = compressed.lookup_prepare(dest, clue);
            let (tag, class) = compressed.lookup_finish_tag(op, dest, clue, &mut cost);
            let mut fcost = Cost::new();
            let fop = frozen.lookup_prepare(dest, clue);
            let (ftag, fclass) = frozen.lookup_finish_tag(fop, dest, clue, &mut fcost);
            prop_assert_eq!(tag, ftag, "dest {} clue {:?}", dest, clue);
            prop_assert_eq!(class, fclass);
            prop_assert_eq!(cost, fcost);
        }
    }
}
