//! Telemetry integration: an instrumented engine's registry counters,
//! its `EngineStats`, and the `from_telemetry` view must all agree, for
//! arbitrary lookup workloads.

use std::sync::Arc;

use clue_core::{ClueEngine, EngineConfig, EngineStats, Method};
use clue_lookup::{reference_bmp, Family};
use clue_telemetry::{Registry, RingBufferSubscriber};
use clue_trie::{Cost, Ip4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..64, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 26 | bits << 10), len))
}

/// The class-counter names `ClueEngine::instrument` registers.
const CLASS_COUNTERS: [&str; 5] = [
    "clue_core_lookups_clueless_total",
    "clue_core_lookups_final_total",
    "clue_core_lookups_continued_total",
    "clue_core_lookups_miss_total",
    "clue_core_lookups_malformed_total",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite invariant: over any sequence of lookups, the registry's
    /// total counter equals the number of `lookup` calls, the per-class
    /// counters sum to it, and the `from_telemetry` view reproduces
    /// `engine.stats()` exactly.
    #[test]
    fn counter_sums_equal_lookup_calls(
        sender in proptest::collection::hash_set(arb_prefix(), 1..20),
        receiver in proptest::collection::hash_set(arb_prefix(), 1..20),
        raws in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let sender: Vec<Prefix<Ip4>> = sender.into_iter().collect();
        let receiver: Vec<Prefix<Ip4>> = receiver.into_iter().collect();
        let registry = Registry::new();
        let mut engine = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        engine.instrument(&registry);

        let mut calls = 0u64;
        for (k, &raw) in raws.iter().enumerate() {
            let dest = Ip4(raw);
            // Mix the three clue shapes: absent, genuine, malformed
            // (the complement differs in the first bit, so it is never
            // a prefix of `dest`).
            let clue = match k % 3 {
                0 => None,
                1 => reference_bmp(&sender, dest).filter(|c| !c.is_empty()),
                _ => Some(Prefix::new(Ip4(!raw), 8)),
            };
            let mut cost = Cost::new();
            engine.lookup(dest, clue, None, &mut cost);
            calls += 1;
        }

        let total = registry.counter("clue_core_lookups_total", "").get();
        prop_assert_eq!(total, calls);
        let class_sum: u64 =
            CLASS_COUNTERS.iter().map(|n| registry.counter(n, "").get()).sum();
        prop_assert_eq!(class_sum, calls);
        let stats = engine.stats();
        prop_assert_eq!(stats.total(), calls);
        let t = engine.telemetry().expect("instrumented");
        prop_assert_eq!(EngineStats::from_telemetry(t), stats);
    }
}

#[test]
fn subscriber_sees_every_lookup_and_reset_clears_both_views() {
    let sender: Vec<Prefix<Ip4>> = ["10.0.0.0/8", "10.1.0.0/16", "20.0.0.0/8"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let registry = Registry::new();
    let mut engine = ClueEngine::precomputed(
        &sender,
        &sender,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    engine.instrument(&registry);
    let ring = Arc::new(RingBufferSubscriber::new(16));
    let t = engine.telemetry().expect("instrumented").clone();
    engine.attach_telemetry(t.with_subscriber(ring.clone()));

    let dests = ["10.1.2.3", "10.200.0.1", "20.0.0.7", "99.0.0.1"];
    for d in dests {
        let dest: Ip4 = d.parse().unwrap();
        let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
        let mut cost = Cost::new();
        engine.lookup(dest, clue, None, &mut cost);
    }
    assert_eq!(ring.seen(), dests.len() as u64);
    assert_eq!(ring.events().len(), dests.len());
    assert_eq!(engine.stats().total(), dests.len() as u64);

    engine.reset_stats();
    assert_eq!(engine.stats(), EngineStats::default());
    let t = engine.telemetry().expect("still attached");
    assert_eq!(EngineStats::from_telemetry(t), EngineStats::default());
    assert_eq!(registry.counter("clue_core_lookups_total", "").get(), 0);
}
