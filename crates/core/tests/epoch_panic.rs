//! Partial-failure guarantees of the epoch-swap machinery: a reader
//! thread that panics while holding an [`EpochGuard`] must not block
//! reclamation, corrupt the generation counter, or poison the cell for
//! other readers. The guard's `Drop` runs during the unwind and
//! quiesces the slot; the reader's `Drop` deregisters it — so a dead
//! reader is invisible once its stack is gone, and a caught panic
//! leaves the same reader usable.
//!
//! The churn driver (`clue_netsim::run_churn`) relies on exactly these
//! properties to survive injected reader faults.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use clue_core::EpochCell;

#[test]
fn a_panicking_pinned_reader_never_blocks_reclamation() {
    for readers in [1usize, 4, 8] {
        let cell = EpochCell::new(0u64);
        let served = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for r in 0..readers {
                let mut reader = cell.reader();
                let served = &served;
                scope.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let guard = reader.pin();
                        served.fetch_add(*guard, Relaxed);
                        if r == 0 {
                            // While pinned: the unwind must release the
                            // pin, or every later publish leaks.
                            panic!("injected: reader 0 dies pinned");
                        }
                        drop(guard);
                    }));
                    assert_eq!(result.is_err(), r == 0);
                });
            }
        });
        // Every reader (including the panicked one) deregistered when
        // its thread unwound; nothing holds a pin.
        assert_eq!(cell.reader_count(), 0, "{readers} readers");
        for v in 1..=5u64 {
            cell.publish(v);
        }
        cell.reclaim();
        assert_eq!(cell.retired_count(), 0, "{readers} readers: reclamation wedged");
        assert_eq!(cell.current_epoch(), 5);
    }
}

#[test]
fn the_generation_counter_survives_interleaved_reader_panics() {
    let cell = EpochCell::new(0u64);
    let mut reader = cell.reader();
    for gen in 1..=8u64 {
        cell.publish(gen);
        // A panic under a live pin, caught in place: epoch bookkeeping
        // must come out exactly as if the read had completed.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let guard = reader.pin();
            assert_eq!(*guard, gen);
            assert_eq!(guard.epoch(), gen);
            panic!("injected at generation {gen}");
        }));
        assert!(result.is_err());
        assert_eq!(cell.current_epoch(), gen, "counter corrupted at {gen}");
    }
    drop(reader);
    cell.reclaim();
    assert_eq!(cell.retired_count(), 0);
    assert_eq!(cell.current_epoch(), 8);
}

#[test]
fn a_reader_recovers_after_a_caught_panic() {
    let cell = EpochCell::new(10u64);
    let mut reader = cell.reader();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _guard = reader.pin();
        panic!("injected");
    }));
    assert!(result.is_err());

    // The same reader keeps working: its slot was quiesced by the
    // guard's unwind-drop, not wedged at the old epoch.
    cell.publish(20);
    let guard = reader.pin();
    assert_eq!(*guard, 20);
    assert_eq!(guard.lag(), 0, "the recovered reader sees the newest snapshot");
    drop(guard);
    drop(reader);
    cell.reclaim();
    assert_eq!(cell.retired_count(), 0);
}

#[test]
fn a_panicked_readers_stale_pin_does_not_leak_past_its_thread() {
    // Regression shape: reader pins epoch 0, panics, thread dies;
    // publishes that happen WHILE the reader is still registered must
    // retire (not free) the pinned snapshot, and its later
    // deregistration must make that snapshot reclaimable.
    let cell = EpochCell::new(0u64);
    std::thread::scope(|scope| {
        let mut reader = cell.reader();
        let cell = &cell;
        let handle = scope.spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _guard = reader.pin();
                panic!("injected");
            }));
            assert!(result.is_err());
            // Unwound but alive: the reader is quiescent, so a publish
            // may retire the old snapshot and reclaim it immediately.
            cell.publish(1);
            cell.reclaim();
        });
        handle.join().expect("the panic was caught inside the thread");
    });
    assert_eq!(cell.reader_count(), 0);
    cell.reclaim();
    assert_eq!(cell.retired_count(), 0);
    assert_eq!(cell.current_epoch(), 1);
}
