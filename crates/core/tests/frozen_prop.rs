//! Property tests for the frozen pipeline: over arbitrary table pairs
//! and workloads, [`FrozenEngine::lookup_batch`] must be
//! indistinguishable from the scalar [`ClueEngine`] path — same BMPs,
//! same per-packet [`Cost`] tick for tick, same class tallies.

use clue_core::{ClueEngine, EngineConfig, FrozenEngine, Method};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{Cost, Ip4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..256, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(20), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 24 | bits << 16 | bits << 4), len))
}

fn arb_tables() -> impl Strategy<Value = (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>)> {
    (
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 0..20),
    )
        .prop_map(|(shared, s_only, r_only)| {
            let sender: Vec<_> = shared.union(&s_only).copied().collect();
            let receiver: Vec<_> = shared.union(&r_only).copied().collect();
            (sender, receiver)
        })
}

/// Destinations biased into covered space so every lookup class shows
/// up, plus honest clues (with occasional raw-bit malformed ones).
fn workload(
    sender: &[Prefix<Ip4>],
    raws: &[u32],
) -> (Vec<Ip4>, Vec<Option<Prefix<Ip4>>>) {
    let mut dests = Vec::with_capacity(raws.len());
    let mut clues = Vec::with_capacity(raws.len());
    for (i, &r) in raws.iter().enumerate() {
        let dest = if i % 2 == 0 {
            let p = sender[i % sender.len()];
            let noise = if p.len() == 32 { 0 } else { r >> p.len() };
            Ip4(p.bits().0 | noise)
        } else {
            Ip4(r)
        };
        let clue = match i % 5 {
            // Malformed: a clue string unrelated to the destination.
            4 => Some(Prefix::new(Ip4(!dest.0), 16)).filter(|c| !c.contains(dest)),
            _ => reference_bmp(sender, dest).filter(|c| !c.is_empty()),
        };
        dests.push(dest);
        clues.push(clue);
    }
    (dests, clues)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched-frozen decisions equal the scalar engine's, cost
    /// included, for every method.
    #[test]
    fn frozen_batch_matches_scalar_engine(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..25),
    ) {
        let (dests, clues) = workload(&sender, &raws);
        for method in [Method::Common, Method::Simple, Method::Advance] {
            let mut scalar = ClueEngine::precomputed(
                &sender, &receiver, EngineConfig::new(Family::Regular, method));
            let frozen: FrozenEngine<Ip4> = scalar.freeze().unwrap();
            let mut out = vec![Default::default(); dests.len()];
            let batch_stats = frozen.lookup_batch(&dests, &clues, &mut out);
            for ((&dest, &clue), d) in dests.iter().zip(&clues).zip(&out) {
                let mut cost = Cost::new();
                let want = scalar.lookup(dest, clue, None, &mut cost);
                prop_assert_eq!(d.bmp, want, "{} dest {} clue {:?}", method, dest, clue);
                prop_assert_eq!(d.cost, cost, "{} dest {} clue {:?}", method, dest, clue);
            }
            // Same packets, same classes: the scalar engine's running
            // tallies must equal the batch's return.
            prop_assert_eq!(batch_stats, scalar.stats());
        }
    }

    /// A frozen engine is a pure function: re-running any batch yields
    /// identical decisions (no hidden learning or cache state).
    #[test]
    fn frozen_lookups_are_stateless(
        (sender, receiver) in arb_tables(),
        raws in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let (dests, clues) = workload(&sender, &raws);
        let engine = ClueEngine::precomputed(
            &sender, &receiver, EngineConfig::new(Family::Regular, Method::Advance));
        let frozen = engine.freeze().unwrap();
        let (first, s1) = frozen.lookup_batch_vec(&dests, &clues);
        let (again, s2) = frozen.lookup_batch_vec(&dests, &clues);
        prop_assert_eq!(first, again);
        prop_assert_eq!(s1, s2);
    }
}
