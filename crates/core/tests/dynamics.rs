//! Route dynamics and robustness: clue tables must stay correct while
//! routes come and go and while malformed clues arrive.

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{Cost, Ip4, Prefix};

fn p(s: &str) -> Prefix<Ip4> {
    s.parse().unwrap()
}

fn a(s: &str) -> Ip4 {
    s.parse().unwrap()
}

fn engines_for_all_families(
    sender: &[Prefix<Ip4>],
    receiver: &[Prefix<Ip4>],
) -> Vec<ClueEngine<Ip4>> {
    Family::all()
        .into_iter()
        .map(|f| ClueEngine::precomputed(sender, receiver, EngineConfig::new(f, Method::Advance)))
        .collect()
}

#[test]
fn malformed_clue_falls_back_to_common_lookup() {
    let sender = vec![p("10.0.0.0/8"), p("20.0.0.0/8")];
    let receiver = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("20.0.0.0/8")];
    for engine in &mut engines_for_all_families(&sender, &receiver) {
        let dest = a("10.1.2.3");
        // A clue that is NOT a prefix of the destination (e.g. a
        // corrupted header decoded against the wrong packet).
        let bogus = Some(p("20.0.0.0/8"));
        let mut cost = Cost::new();
        let got = engine.lookup(dest, bogus, None, &mut cost);
        assert_eq!(got, Some(p("10.1.0.0/16")), "{}", engine.config().family);
        assert!(cost.total() >= 1);
    }
}

#[test]
fn receiver_route_addition_reclassifies() {
    let sender = vec![p("10.0.0.0/8")];
    let receiver = vec![p("10.0.0.0/8")];
    for family in Family::all_extended() {
        let mut engine =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, Method::Advance));
        let dest = a("10.5.1.2");
        // Initially the clue is final.
        let mut c = Cost::new();
        assert_eq!(engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut c), Some(p("10.0.0.0/8")));
        assert_eq!(c.total(), 1, "{family}");

        // The receiver learns a refinement covering the destination.
        engine.add_receiver_route(p("10.5.0.0/16"));
        let mut c = Cost::new();
        assert_eq!(
            engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut c),
            Some(p("10.5.0.0/16")),
            "{family}: stale final entry survived the route addition"
        );
        // And the common path agrees.
        let mut cc = Cost::new();
        assert_eq!(engine.common_lookup(dest, &mut cc), Some(p("10.5.0.0/16")), "{family}");
    }
}

#[test]
fn receiver_route_removal_reclassifies() {
    let sender = vec![p("10.0.0.0/8")];
    let receiver = vec![p("10.0.0.0/8"), p("10.5.0.0/16")];
    for family in Family::all_extended() {
        let mut engine =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, Method::Advance));
        let dest = a("10.5.1.2");
        assert_eq!(
            engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut Cost::new()),
            Some(p("10.5.0.0/16"))
        );
        assert!(engine.remove_receiver_route(&p("10.5.0.0/16")));
        assert!(!engine.remove_receiver_route(&p("10.5.0.0/16")), "double remove");
        let mut c = Cost::new();
        assert_eq!(
            engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut c),
            Some(p("10.0.0.0/8")),
            "{family}"
        );
        // After removal the clue is covered again: final in one access.
        assert_eq!(c.total(), 1, "{family}");
    }
}

#[test]
fn sender_announcement_tightens_claim1() {
    // Receiver refines 10/8 with 10.5/16; the sender initially lacks it,
    // so the 10/8 clue is problematic. Once the sender announces
    // 10.5/16 too, Claim 1 covers the 10/8 clue.
    let sender = vec![p("10.0.0.0/8")];
    let receiver = vec![p("10.0.0.0/8"), p("10.5.0.0/16")];
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let dest = a("10.9.9.9"); // not under the refinement
    let mut c = Cost::new();
    engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut c);
    assert!(c.total() > 1, "problematic clue should continue the search");

    engine.add_sender_prefix(p("10.5.0.0/16"));
    let mut c = Cost::new();
    assert_eq!(engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut c), Some(p("10.0.0.0/8")));
    assert_eq!(c.total(), 1, "Claim 1 should now finalise the clue");
    // The new prefix also works as a clue itself.
    let under = a("10.5.7.7");
    let mut c = Cost::new();
    assert_eq!(
        engine.lookup(under, Some(p("10.5.0.0/16")), None, &mut c),
        Some(p("10.5.0.0/16"))
    );
    assert_eq!(c.total(), 1);
}

#[test]
fn sender_withdrawal_loosens_claim1_safely() {
    let sender = vec![p("10.0.0.0/8"), p("10.5.0.0/16")];
    let receiver = vec![p("10.0.0.0/8"), p("10.5.0.0/16")];
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Patricia, Method::Advance),
    );
    engine.remove_sender_prefix(&p("10.5.0.0/16"));
    // Correctness holds either way; a destination under the refinement
    // with the now-stale 10/8 clue must still find the /16.
    let dest = a("10.5.7.7");
    let got = engine.lookup(dest, Some(p("10.0.0.0/8")), None, &mut Cost::new());
    assert_eq!(got, Some(p("10.5.0.0/16")));
}

#[test]
fn stale_clue_naming_a_withdrawn_route_still_resolves() {
    // The sender's table (and therefore its clue set) is unchanged while
    // the receiver withdraws refinements, so packets keep arriving with
    // clues that name routes the receiver no longer has. Correctness
    // must not depend on the clue being live on the receiving side.
    let sender = vec![p("10.0.0.0/8"), p("10.5.0.0/16")];
    let receiver = vec![p("10.0.0.0/8"), p("10.5.0.0/16"), p("10.5.7.0/24")];
    for family in Family::all_extended() {
        let mut engine =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, Method::Advance));
        let dest = a("10.5.7.7");
        assert_eq!(
            engine.lookup(dest, Some(p("10.5.0.0/16")), None, &mut Cost::new()),
            Some(p("10.5.7.0/24")),
            "{family}"
        );

        assert!(engine.remove_receiver_route(&p("10.5.7.0/24")));
        assert!(engine.remove_receiver_route(&p("10.5.0.0/16")));
        // The stale /16 clue must now fall back to the remaining /8 —
        // not to the withdrawn /16 it names, and not to a miss.
        let mut c = Cost::new();
        assert_eq!(
            engine.lookup(dest, Some(p("10.5.0.0/16")), None, &mut c),
            Some(p("10.0.0.0/8")),
            "{family}: stale clue produced a withdrawn BMP"
        );
        assert!(c.total() >= 1, "{family}");
        // And the common path agrees on the post-withdrawal answer.
        assert_eq!(engine.common_lookup(dest, &mut Cost::new()), Some(p("10.0.0.0/8")), "{family}");
    }
}

#[test]
fn stale_sender_clues_survive_bulk_receiver_withdrawals() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4242);
    let mut sender: Vec<Prefix<Ip4>> = (0..100)
        .map(|_| {
            Prefix::new(Ip4(rng.random()), *[8u8, 16, 24].get(rng.random_range(0..3usize)).unwrap())
        })
        .collect();
    sender.sort();
    sender.dedup();
    let mut receiver = sender.clone();

    for family in [Family::Regular, Family::Patricia, Family::LogW] {
        let mut engine =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, Method::Advance));
        // Withdraw half the receiver's routes; the sender (and its clue
        // stream) never hears about it.
        while receiver.len() > sender.len() / 2 {
            let i = rng.random_range(0..receiver.len());
            let gone = receiver.swap_remove(i);
            assert!(engine.remove_receiver_route(&gone), "{family}");
        }
        // Every destination still carries the clue computed against the
        // ORIGINAL sender table; answers must match the shrunken
        // receiver table exactly.
        for _ in 0..200 {
            let base = sender[rng.random_range(0..sender.len())];
            let noise = if base.len() == 32 { 0 } else { rng.random::<u32>() >> base.len() };
            let dest = Ip4(base.bits().0 | noise);
            let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
            let want = reference_bmp(&receiver, dest);
            let got = engine.lookup(dest, clue, None, &mut Cost::new());
            assert_eq!(got, want, "{family} dest {dest} stale clue {clue:?}");
        }
        receiver = sender.clone();
    }
}

#[test]
fn learning_table_growth_is_bounded() {
    let receiver = vec![p("10.0.0.0/8")];
    let mut cfg = EngineConfig::new(Family::Patricia, Method::Advance);
    cfg.max_learned_entries = Some(4);
    let mut engine = ClueEngine::learning(&receiver, cfg);
    // A flood of distinct (bogus but well-formed) clues.
    for i in 0..100u32 {
        let dest = Ip4(0x0A00_0000 | i << 8);
        let clue = Some(Prefix::new(dest, 24));
        let got = engine.lookup(dest, clue, None, &mut Cost::new());
        assert_eq!(got, Some(p("10.0.0.0/8")), "results stay correct during the flood");
    }
    assert!(engine.table().len() <= 4, "table grew to {}", engine.table().len());
}

#[test]
fn randomized_churn_preserves_correctness() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(777);
    let mut sender: Vec<Prefix<Ip4>> = (0..120)
        .map(|_| Prefix::new(Ip4(rng.random()), *[8u8, 16, 24].get(rng.random_range(0..3usize)).unwrap()))
        .collect();
    sender.sort();
    sender.dedup();
    let mut receiver = sender.clone();

    for family in [Family::Regular, Family::Patricia, Family::LogW] {
        let mut engine =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, Method::Advance));
        for step in 0..60 {
            // Churn: add or remove a receiver route.
            if rng.random_bool(0.5) || receiver.len() < 20 {
                let base = sender[rng.random_range(0..sender.len())];
                let longer_len = (base.len() + 8).min(32);
                let refin = Prefix::new(
                    Ip4(base.bits().0 | (rng.random::<u32>() >> base.len().min(31))),
                    longer_len,
                );
                if !receiver.contains(&refin) {
                    receiver.push(refin);
                    engine.add_receiver_route(refin);
                }
            } else {
                let i = rng.random_range(0..receiver.len());
                let gone = receiver.swap_remove(i);
                engine.remove_receiver_route(&gone);
            }
            // Validate on a handful of destinations with honest clues.
            for _ in 0..10 {
                let base = sender[rng.random_range(0..sender.len())];
                let span = 32 - base.len();
                let noise = if span == 0 { 0 } else { rng.random::<u32>() >> base.len() };
                let dest = Ip4(base.bits().0 | noise);
                let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
                let want = reference_bmp(&receiver, dest);
                let got = engine.lookup(dest, clue, None, &mut Cost::new());
                assert_eq!(got, want, "{family} step {step} dest {dest} clue {clue:?}");
            }
        }
    }
}
