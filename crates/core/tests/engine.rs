//! Integration tests for `ClueEngine`: correctness of all fifteen method
//! combinations, cost headlines, learning, and the indexing technique.

use clue_core::{ClueEngine, ClueHeader, ClueIndexer, EngineConfig, Method};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{Cost, Ip4, Prefix};

fn p(s: &str) -> Prefix<Ip4> {
    s.parse().unwrap()
}

fn a(s: &str) -> Ip4 {
    s.parse().unwrap()
}

/// A sender/receiver pair with all the interesting relations: shared
/// prefixes, receiver-only refinements (problematic), sender-only
/// refinements (Claim 1 coverage), disjoint branches.
fn tables() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
    let sender = vec![
        p("10.0.0.0/8"),
        p("10.1.0.0/16"),
        p("10.3.0.0/16"),
        p("20.0.0.0/8"),
        p("30.0.0.0/8"),
        p("30.1.2.0/24"),
        p("40.40.0.0/16"),
    ];
    let receiver = vec![
        p("10.0.0.0/8"),
        p("10.1.0.0/16"),
        p("10.1.2.0/24"), // extends a shared /16: problematic for 10.1/16
        p("10.2.0.0/16"), // receiver-only branch under 10/8
        p("20.0.0.0/8"),
        p("30.0.0.0/8"), // sender refines 30/8 with /24 we lack: covered
        p("50.0.0.0/8"), // receiver-only tree
    ];
    (sender, receiver)
}

fn destinations() -> Vec<Ip4> {
    [
        "10.1.2.3",    // hits the receiver-only /24 refinement
        "10.1.200.1",  // stays at the shared /16
        "10.2.7.7",    // receiver-only /16
        "10.200.1.1",  // only the /8
        "10.3.3.3",    // sender /16 the receiver lacks (clue longer than BMP)
        "20.5.5.5",    // identical on both sides
        "30.1.2.9",    // sender's /24 clue, receiver vertex absent
        "30.7.7.7",    // shared /8
        "40.40.1.1",   // sender-only /16 (receiver vertex absent, no FD)
        "99.99.99.99", // matches nothing anywhere
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

/// Every (family × method) engine returns exactly the reference BMP when
/// fed honest clues — the paper's invariant that clues change only cost,
/// never the result.
#[test]
fn all_fifteen_combinations_agree_with_reference() {
    let (sender, receiver) = tables();
    for family in Family::all_extended() {
        for method in Method::all() {
            let mut engine = ClueEngine::precomputed(
                &sender,
                &receiver,
                EngineConfig::new(family, method),
            );
            for dest in destinations() {
                let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
                let mut cost = Cost::new();
                let got = engine.lookup(dest, clue, None, &mut cost);
                let want = reference_bmp(&receiver, dest);
                assert_eq!(got, want, "{family}/{method} dest {dest} clue {clue:?}");
                assert!(cost.total() >= 1, "{family}/{method}: free lookups do not exist");
            }
        }
    }
}

/// With identical neighbor tables and the Advance method every clue is
/// covered by Claim 1: each lookup is exactly the one clue-table access —
/// the paper's “near optimal number of memory accesses, 1”.
#[test]
fn advance_on_identical_tables_costs_exactly_one_access() {
    let (_, receiver) = tables();
    for family in Family::all_extended() {
        let mut engine = ClueEngine::precomputed(
            &receiver,
            &receiver,
            EngineConfig::new(family, Method::Advance),
        );
        for dest in destinations() {
            let Some(clue) = reference_bmp(&receiver, dest).filter(|c| !c.is_empty()) else {
                continue;
            };
            let mut cost = Cost::new();
            let got = engine.lookup(dest, Some(clue), None, &mut cost);
            assert_eq!(got, Some(clue), "{family}");
            assert_eq!(cost.total(), 1, "{family}: Claim 1 should finalise every clue");
        }
    }
}

/// The Simple method must also resolve correctly but may continue the
/// search where Advance already knows the answer.
#[test]
fn simple_pays_more_than_advance_but_less_than_common() {
    let (sender, receiver) = tables();
    let mut totals = Vec::new();
    for method in Method::all() {
        let mut engine = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Regular, method),
        );
        let mut sum = 0u64;
        for dest in destinations() {
            let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
            let mut cost = Cost::new();
            engine.lookup(dest, clue, None, &mut cost);
            sum += cost.total();
        }
        totals.push(sum);
    }
    let (common, simple, advance) = (totals[0], totals[1], totals[2]);
    assert!(advance <= simple, "Advance {advance} should not exceed Simple {simple}");
    assert!(simple < common, "Simple {simple} should beat common {common}");
}

/// A clue the engine has never seen falls back to the common lookup; in
/// learning mode the second packet with the same clue is then cheap.
#[test]
fn learning_engine_improves_after_first_packet() {
    let (sender, receiver) = tables();
    let mut engine = ClueEngine::learning(
        &receiver,
        EngineConfig::new(Family::Patricia, Method::Advance),
    );
    let dest = a("20.5.5.5");
    let clue = reference_bmp(&sender, dest);
    let mut first = Cost::new();
    assert_eq!(engine.lookup(dest, clue, None, &mut first), Some(p("20.0.0.0/8")));
    let mut second = Cost::new();
    assert_eq!(engine.lookup(dest, clue, None, &mut second), Some(p("20.0.0.0/8")));
    assert!(second.total() < first.total(), "{} !< {}", second.total(), first.total());
    assert_eq!(second.total(), 1);
    assert_eq!(engine.table().len(), 1);
}

/// Learning with partial knowledge is conservative but correct, and
/// `reclassify_all` tightens entries as knowledge grows.
#[test]
fn learning_reclassification_tightens_entries() {
    let sender = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
    let receiver = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
    let mut engine =
        ClueEngine::learning(&receiver, EngineConfig::new(Family::Regular, Method::Advance));
    // First: learn 10/8 while knowing nothing about the sender. The
    // receiver's 10.1/16 makes it problematic under zero knowledge.
    let d8 = a("10.200.0.1");
    engine.lookup(d8, reference_bmp(&sender, d8), None, &mut Cost::new());
    assert!(engine.table().problematic_fraction() > 0.0);
    // Then learn 10.1/16; reclassifying now covers 10/8 by Claim 1.
    let d16 = a("10.1.9.9");
    engine.lookup(d16, reference_bmp(&sender, d16), None, &mut Cost::new());
    engine.reclassify_all();
    assert_eq!(engine.table().problematic_fraction(), 0.0);
    // And the next 10/8-clued packet is final in one access.
    let mut c = Cost::new();
    assert_eq!(engine.lookup(d8, reference_bmp(&sender, d8), None, &mut c), Some(p("10.0.0.0/8")));
    assert_eq!(c.total(), 1);
}

/// The indexing technique: sender stamps 16-bit indices, receiver reads
/// slots directly (no hash), stale slots self-heal by overwrite.
#[test]
fn indexing_technique_end_to_end() {
    let (sender, receiver) = tables();
    let mut engine = ClueEngine::learning(
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance).with_indexed_table(),
    );
    let mut indexer = ClueIndexer::new();
    // Two passes: first learns, second hits the indexed slots.
    for pass in 0..2 {
        for dest in destinations() {
            let Some(clue) = reference_bmp(&sender, dest).filter(|c| !c.is_empty()) else {
                continue;
            };
            let idx = indexer.index_of(&clue);
            let mut cost = Cost::new();
            let got = engine.lookup(dest, Some(clue), Some(idx), &mut cost);
            assert_eq!(got, reference_bmp(&receiver, dest), "pass {pass} dest {dest}");
            if pass == 1 {
                assert!(cost.indexed_reads >= 1);
                assert_eq!(cost.hash_probes, 0, "indexing eliminates the hash function");
            }
        }
    }
    assert!(engine.table().len() >= 5);
}

/// Headers carry the clue as 5 bits + destination; decoding must feed the
/// engine the identical prefix.
#[test]
fn header_roundtrip_matches_explicit_clue() {
    let (sender, receiver) = tables();
    let mut e1 =
        ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(Family::LogW, Method::Advance));
    let mut e2 =
        ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(Family::LogW, Method::Advance));
    for dest in destinations() {
        let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
        let header = match &clue {
            Some(c) => ClueHeader::with_clue(c),
            None => ClueHeader::none(),
        };
        let (mut c1, mut c2) = (Cost::new(), Cost::new());
        assert_eq!(
            e1.lookup(dest, clue, None, &mut c1),
            e2.lookup_with_header(dest, &header, &mut c2)
        );
        assert_eq!(c1.total(), c2.total());
    }
}

/// Vertex bits (Section 4) are a pure optimisation: same result, no more
/// accesses than the plain continuation walk.
#[test]
fn vertex_bits_preserve_results_and_never_cost_more() {
    let (sender, receiver) = tables();
    for family in [Family::Regular, Family::Patricia] {
        let mut with = EngineConfig::new(family, Method::Advance);
        with.vertex_bits = true;
        let mut without = with;
        without.vertex_bits = false;
        let mut e_with = ClueEngine::precomputed(&sender, &receiver, with);
        let mut e_without = ClueEngine::precomputed(&sender, &receiver, without);
        for dest in destinations() {
            let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
            let (mut cw, mut co) = (Cost::new(), Cost::new());
            let rw = e_with.lookup(dest, clue, None, &mut cw);
            let ro = e_without.lookup(dest, clue, None, &mut co);
            assert_eq!(rw, ro, "{family} dest {dest}");
            assert!(cw.total() <= co.total(), "{family} dest {dest}");
        }
    }
}

/// The Section 3.5 cache: hits replace slow probes with cache reads,
/// results never change, and repeated clues hit after the first miss.
#[test]
fn cache_serves_repeats_from_fast_memory() {
    let (sender, receiver) = tables();
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Patricia, Method::Advance),
    );
    engine.enable_cache(8);
    let dest = a("20.5.5.5");
    let clue = Some(p("20.0.0.0/8"));

    let mut first = Cost::new();
    let r1 = engine.lookup(dest, clue, None, &mut first);
    // Miss: one cache probe + one slow probe.
    assert_eq!(first.cache_reads, 1);
    assert_eq!(first.slow_total(), 1);

    let mut second = Cost::new();
    let r2 = engine.lookup(dest, clue, None, &mut second);
    assert_eq!(r1, r2);
    // Hit: one cache read, zero slow accesses.
    assert_eq!(second.cache_reads, 1);
    assert_eq!(second.slow_total(), 0);

    let stats = engine.cache_stats().unwrap();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

/// Telemetry counts every resolution path correctly.
#[test]
fn engine_stats_track_resolution_paths() {
    let (sender, receiver) = tables();
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Patricia, Method::Advance),
    );
    // Final: identical prefix, covered.
    engine.lookup(a("20.5.5.5"), Some(p("20.0.0.0/8")), None, &mut Cost::new());
    // Continued: the 10.1/16 clue has the receiver-only /24 refinement.
    engine.lookup(a("10.1.2.3"), Some(p("10.1.0.0/16")), None, &mut Cost::new());
    // Miss: a clue that is no sender prefix.
    engine.lookup(a("50.1.1.1"), Some(p("50.0.0.0/8")), None, &mut Cost::new());
    // Clue-less.
    engine.lookup(a("20.5.5.5"), None, None, &mut Cost::new());
    // Malformed.
    engine.lookup(a("20.5.5.5"), Some(p("10.0.0.0/8")), None, &mut Cost::new());

    let s = engine.stats();
    assert_eq!(s.finals, 1, "{s:?}");
    assert_eq!(s.continued, 1, "{s:?}");
    assert_eq!(s.misses, 1, "{s:?}");
    assert_eq!(s.clueless, 1, "{s:?}");
    assert_eq!(s.malformed, 1, "{s:?}");
    assert_eq!(s.total(), 5);
    assert!((s.final_rate() - 1.0 / 3.0).abs() < 1e-9);
    engine.reset_stats();
    assert_eq!(engine.stats().total(), 0);
}

/// Randomised cross-check of the full 15-scheme matrix on a bigger pair
/// of synthetic tables.
#[test]
fn randomized_matrix_agreement() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC1DE);
    // Sender: random prefixes; receiver: a mutation of the sender.
    let mut sender: Vec<Prefix<Ip4>> = (0..400)
        .map(|_| {
            let len = *[8u8, 12, 16, 16, 20, 24, 24, 24].get(rng.random_range(0..8usize)).unwrap();
            Prefix::new(Ip4(rng.random()), len)
        })
        .collect();
    sender.sort();
    sender.dedup();
    let mut receiver = sender.clone();
    for _ in 0..40 {
        let i = rng.random_range(0..receiver.len());
        receiver.remove(i);
    }
    for _ in 0..40 {
        let base = sender[rng.random_range(0..sender.len())];
        if base.len() <= 24 {
            let longer = Prefix::new(
                Ip4(base.bits().0 | (rng.random::<u32>() >> base.len())),
                base.len() + 4,
            );
            receiver.push(longer);
        }
    }
    receiver.sort();
    receiver.dedup();

    let dests: Vec<Ip4> = (0..200)
        .map(|_| {
            // Bias destinations into covered space half the time.
            if rng.random_bool(0.5) {
                let p = sender[rng.random_range(0..sender.len())];
                let noise = if p.len() == 32 { 0 } else { rng.random::<u32>() >> p.len() };
                Ip4(p.bits().0 | noise)
            } else {
                Ip4(rng.random())
            }
        })
        .collect();

    for family in Family::all_extended() {
        for method in [Method::Simple, Method::Advance] {
            let mut engine =
                ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, method));
            for &dest in &dests {
                let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
                let mut cost = Cost::new();
                let got = engine.lookup(dest, clue, None, &mut cost);
                assert_eq!(got, reference_bmp(&receiver, dest), "{family}/{method} {dest}");
            }
        }
    }
}

/// The profiled scalar lookup must be a perfect mirror of the plain
/// one: same BMP, tick-for-tick the same cost, the same evolving
/// engine state (stats, cache residency) — across every family and
/// method, with honest clues, and with the Section 3.5 cache enabled.
#[test]
fn profiled_lookup_mirrors_plain_lookup() {
    use clue_core::{Stage, StageProfiler};
    let (sender, receiver) = tables();
    let families = [Family::Regular, Family::Patricia, Family::Binary, Family::LogW];
    for family in families {
        for method in Method::all() {
            for with_cache in [false, true] {
                let config = EngineConfig::new(family, method);
                let mut plain = ClueEngine::precomputed(&sender, &receiver, config);
                let mut profiled = ClueEngine::precomputed(&sender, &receiver, config);
                if with_cache {
                    plain.enable_cache(4);
                    profiled.enable_cache(4);
                }
                let mut prof = StageProfiler::new();
                let mut lookups = 0u64;
                for &dest in &destinations() {
                    for clue in [None, reference_bmp(&sender, dest)] {
                        let mut pc = Cost::new();
                        let want = plain.lookup(dest, clue, None, &mut pc);
                        let mut qc = Cost::new();
                        let got = profiled.lookup_profiled(dest, clue, None, &mut qc, &mut prof);
                        assert_eq!(
                            got, want,
                            "{family:?}/{method} cache={with_cache} {dest} {clue:?}"
                        );
                        assert_eq!(
                            qc, pc,
                            "{family:?}/{method} cache={with_cache} cost for {dest} {clue:?}"
                        );
                        lookups += 1;
                    }
                }
                assert_eq!(plain.stats(), profiled.stats(), "{family:?}/{method} stats");
                assert_eq!(prof.lookups(), lookups);
                assert!(prof.total_ticks() > 0);
                if with_cache && method != Method::Common {
                    assert!(
                        prof.stage(Stage::Cache).visits > 0,
                        "{family:?}/{method}: cache stage must be exercised"
                    );
                }
            }
        }
    }
}
