//! Reputation state-machine properties: over arbitrary thresholds and
//! evidence streams, a sustained liar's score must fall monotonically
//! (and never re-admit while the lying continues), and an honest
//! neighbor must always complete the quarantine → probation →
//! re-admission round trip in bounded time. These are the guarantees
//! the fleet's per-link quarantine ([`clue_netsim`]'s adversarial leg)
//! and the serving runtime's `QuarantineGate` rely on.

use clue_core::{BatchSignals, LinkState, NeighborReputation, ReputationConfig, Transition};
use proptest::prelude::*;

/// Arbitrary-but-coherent configs: a real hysteresis gap between the
/// quarantine and re-admission thresholds, nonzero decay/recovery.
fn arb_config() -> impl Strategy<Value = ReputationConfig> {
    (
        (
            0.0f64..0.1,  // suspicion
            0.2f64..0.9,  // attack_decay
            0.05f64..0.6, // recovery
        ),
        (
            0.2f64..0.6,  // quarantine_below
            0.7f64..0.95, // readmit_above
        ),
        (
            1u64..8, // quarantine_batches
            1u64..5, // probation_batches
        ),
    )
        .prop_map(
            |(
                (suspicion, attack_decay, recovery),
                (quarantine_below, readmit_above),
                (quarantine_batches, probation_batches),
            )| ReputationConfig {
                suspicion,
                attack_decay,
                recovery,
                quarantine_below,
                readmit_above,
                quarantine_batches,
                probation_batches,
            },
        )
}

/// A fully dirty batch: every lookup overran the baseline.
fn dirty(lookups: u64) -> BatchSignals {
    BatchSignals { lookups, malformed: 0, overruns: lookups }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sustained lying: the score never rises, quarantine engages in
    /// bounded time, and while the lying continues the link is never
    /// re-admitted to clued serving (quarantine is an evidence
    /// blackout, so the only healthy-looking state a liar can reach
    /// is the probation that instantly re-quarantines).
    #[test]
    fn score_is_monotone_under_sustained_lying(
        config in arb_config(),
        lookups in 1u64..10_000,
        batches in 8usize..64,
    ) {
        let mut n = NeighborReputation::default();
        let mut prev = n.score();
        let mut quarantined_at: Option<usize> = None;
        for batch in 0..batches {
            let t = n.observe(&dirty(lookups), &config);
            prop_assert!(
                n.score() <= prev + 1e-12,
                "score rose under attack at batch {batch}: {} -> {}",
                prev,
                n.score(),
            );
            prev = n.score();
            // A sustained liar must never be re-admitted.
            prop_assert_ne!(t, Transition::Readmitted);
            if matches!(n.state(), LinkState::Quarantined { .. }) && quarantined_at.is_none() {
                quarantined_at = Some(batch);
            }
            if quarantined_at.is_some() {
                // Once evidence forced a quarantine, a full-dirty
                // stream can never hold the link Healthy again.
                prop_assert_ne!(n.state(), LinkState::Healthy);
            }
        }
        // score(k) = (1 - decay)^k decays below any positive
        // threshold; 64 full-dirty batches are far beyond the bound.
        prop_assert!(
            quarantined_at.is_some() || batches < 64,
            "64 full-dirty batches never quarantined (score {})",
            n.score(),
        );
    }

    /// Honest round trip: drive a link into quarantine, then feed only
    /// clean evidence — it must pass through probation and be
    /// re-admitted with a recovered score, in time bounded by the
    /// hold-down plus the recovery geometry.
    #[test]
    fn honest_neighbor_always_completes_the_round_trip(
        config in arb_config(),
        lookups in 1u64..10_000,
    ) {
        let mut n = NeighborReputation::default();
        // Attack until quarantined (bounded: score decays geometrically).
        let mut batches = 0;
        while !matches!(n.state(), LinkState::Quarantined { .. }) {
            n.observe(&dirty(lookups), &config);
            batches += 1;
            prop_assert!(batches <= 512, "quarantine never engaged");
        }
        // Now the neighbor is honest forever.
        let clean = BatchSignals::clean(lookups);
        let mut saw_probation = false;
        let mut readmitted_at = None;
        // Hold-down + recovery to readmit_above from any score floor +
        // probation dwell is comfortably inside this bound for the
        // config ranges above.
        for batch in 0..4096 {
            match n.observe(&clean, &config) {
                Transition::Probation => saw_probation = true,
                Transition::Readmitted => {
                    readmitted_at = Some(batch);
                    break;
                }
                Transition::Quarantined => {
                    prop_assert!(false, "clean evidence caused a quarantine");
                }
                Transition::None => {}
            }
        }
        prop_assert!(saw_probation, "re-admission must pass through probation");
        prop_assert!(readmitted_at.is_some(), "honest neighbor never re-admitted");
        prop_assert_eq!(n.state(), LinkState::Healthy);
        prop_assert!(n.score() >= config.readmit_above);
        prop_assert!(n.uses_clues());
    }

    /// Hysteresis: between the quarantine trip and re-admission the
    /// link never serves clues, no matter how the two evidence kinds
    /// interleave afterward.
    #[test]
    fn quarantine_always_blacks_out_clued_serving(
        config in arb_config(),
        pattern in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut n = NeighborReputation::default();
        for &is_dirty in &pattern {
            let signals = if is_dirty {
                dirty(100)
            } else {
                BatchSignals::clean(100)
            };
            n.observe(&signals, &config);
            prop_assert_eq!(
                n.uses_clues(),
                !matches!(n.state(), LinkState::Quarantined { .. }),
                "uses_clues must mirror the quarantine state exactly",
            );
        }
    }
}
