//! Churn identity property: announcing a receiver route and then
//! withdrawing it must leave the engine indistinguishable from one that
//! never saw the prefix — same lookup answers, same per-lookup costs
//! (a proxy for the Claim-1 classifications driving early exits), same
//! clue-table classifications, and a bit-identical frozen snapshot.
//!
//! This is the single-update core of the live-churn serving contract:
//! `clue churn --check` relies on a whole update stream composing out
//! of such identities.

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::{reference_bmp, Family};
use clue_trie::{Cost, Ip4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    (0u32..256, prop_oneof![Just(6u8), Just(8), Just(12), Just(16), Just(20), Just(24)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 24 | bits << 16 | bits << 4), len))
}

fn arb_tables() -> impl Strategy<Value = (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>)> {
    (
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 1..40),
        proptest::collection::hash_set(arb_prefix(), 0..20),
    )
        .prop_map(|(shared, s_only, r_only)| {
            let sender: Vec<_> = shared.union(&s_only).copied().collect();
            let receiver: Vec<_> = shared.union(&r_only).copied().collect();
            (sender, receiver)
        })
}

/// Destinations biased into sender space, each with its honest clue.
fn workload(sender: &[Prefix<Ip4>], raws: &[u32]) -> Vec<(Ip4, Option<Prefix<Ip4>>)> {
    raws.iter()
        .enumerate()
        .map(|(i, &r)| {
            let dest = if i % 2 == 0 {
                let p = sender[i % sender.len()];
                let noise = if p.len() == 32 { 0 } else { r >> p.len() };
                Ip4(p.bits().0 | noise)
            } else {
                Ip4(r)
            };
            (dest, reference_bmp(sender, dest).filter(|c| !c.is_empty()))
        })
        .collect()
}

/// The observable classification of one clue-table entry: which prefix,
/// what final decision, and whether Claim 1 let it stop the search.
fn classifications(engine: &ClueEngine<Ip4>) -> Vec<(Prefix<Ip4>, Option<Prefix<Ip4>>, bool)> {
    let mut out: Vec<_> =
        engine.table().entries().map(|e| (e.clue, e.fd, e.is_final())).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `add_receiver_route(p)` followed by `remove_receiver_route(p)`
    /// is the identity on everything observable.
    #[test]
    fn announce_then_withdraw_is_identity(
        (sender, receiver) in arb_tables(),
        extra in arb_prefix(),
        raws in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        prop_assume!(!receiver.contains(&extra));
        let packets = workload(&sender, &raws);

        for family in [Family::Regular, Family::Patricia, Family::LogW] {
            let config = EngineConfig::new(family, Method::Advance);
            let mut pristine = ClueEngine::precomputed(&sender, &receiver, config);
            let mut churned = ClueEngine::precomputed(&sender, &receiver, config);
            churned.add_receiver_route(extra);
            prop_assert!(churned.remove_receiver_route(&extra), "{family}: remove failed");

            prop_assert_eq!(
                classifications(&pristine),
                classifications(&churned),
                "{}: clue-table classifications diverged",
                family
            );
            for &(dest, clue) in &packets {
                let mut c_p = Cost::new();
                let mut c_c = Cost::new();
                let want = pristine.lookup(dest, clue, None, &mut c_p);
                let got = churned.lookup(dest, clue, None, &mut c_c);
                prop_assert_eq!(got, want, "{} dest {} clue {:?}", family, dest, clue);
                prop_assert_eq!(c_c, c_p, "{} dest {} clue {:?}", family, dest, clue);
            }
            if family == Family::Regular {
                let a = pristine.freeze().unwrap();
                let b = churned.freeze().unwrap();
                prop_assert!(a.bit_identical(&b), "churned snapshot differs bit-for-bit");
            }
        }
    }

    /// The same identity holds when the withdrawn prefix was part of the
    /// original table (withdraw first, re-announce after).
    #[test]
    fn withdraw_then_reannounce_is_identity(
        (sender, receiver) in arb_tables(),
        pick in any::<u32>(),
        raws in proptest::collection::vec(any::<u32>(), 1..15),
    ) {
        let victim = receiver[pick as usize % receiver.len()];
        let packets = workload(&sender, &raws);
        let config = EngineConfig::new(Family::Regular, Method::Advance);
        let pristine = ClueEngine::precomputed(&sender, &receiver, config);
        let mut churned = ClueEngine::precomputed(&sender, &receiver, config);
        prop_assert!(churned.remove_receiver_route(&victim));
        churned.add_receiver_route(victim);

        prop_assert_eq!(classifications(&pristine), classifications(&churned));
        for &(dest, clue) in &packets {
            let mut c = Cost::new();
            let got = churned.lookup(dest, clue, None, &mut c);
            prop_assert_eq!(got, reference_bmp(&receiver, dest), "dest {} clue {:?}", dest, clue);
        }
        prop_assert!(pristine.freeze().unwrap().bit_identical(&churned.freeze().unwrap()));
    }
}
