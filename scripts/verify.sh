#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint wall.
# Run from the repo root. Any failure aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Throughput smoke: the batched-frozen, stride-compiled,
# entropy-compressed and sharded-parallel pipelines must agree exactly
# with the scalar engine
# (--check aborts on any divergence); also seeds the BENCH_*
# trajectory. The perf gates are part of the bar: the stride path must
# beat the frozen batch path on the same (paper-scale table) workload,
# and the shared-nothing runtime must beat the sequential reference by
# a real margin at 4 workers (floor 2.5x, target 3x — see --min
# below). Correctness must hold on every attempt; the relative perf
# gates get three attempts, because a loaded shared box can momentarily
# deflate a multiplier without any code regression.
throughput_ok=0
for attempt in 1 2 3; do
  target/release/clue throughput 100000 1 --threads 4 --check --runtime \
    --json BENCH_throughput.json.new
  test -s BENCH_throughput.json.new
  grep -q '"equivalent": true' BENCH_throughput.json.new
  if grep -q '"stride_beats_batch": true' BENCH_throughput.json.new &&
     grep -q '"parallel_scales": true' BENCH_throughput.json.new &&
     target/release/clue bench-diff BENCH_throughput.json BENCH_throughput.json.new \
       --tolerance 5 --time-tolerance 900 --min parallel_speedup=2.5 \
       --max compressed_bytes_per_prefix=8; then
    throughput_ok=1
    break
  fi
  echo "verify: throughput perf gate missed on attempt ${attempt}; retrying" >&2
done
# Regression + floor gate (the bench-diff in the loop): the fresh run
# must stay structurally identical to the committed baseline (same
# keys, same deterministic values), within an order of magnitude on
# the timing keys — a shared CI box is too noisy for tight pps gates,
# but a 10x collapse is a real bug — and the runtime's
# parallel_speedup must clear its 2.5x floor.
[ "$throughput_ok" -eq 1 ]
mv BENCH_throughput.json.new BENCH_throughput.json

# Tablegen scale tests only exist in release (the 1M-prefix generation
# and shape checks are #[cfg(not(debug_assertions))]); run them
# explicitly so the modern-DFZ histogram contract is part of the gate.
cargo test -q --release -p clue-tablegen

# Compressed-backend smoke at modern-DFZ scale: build the 1M-prefix
# entropy-compressed engine (deterministic seed), prove it bit-identical
# to the scalar reference on the full workload (--check aborts on any
# divergence), and hold the layout to its budget: the nibble-packed
# arena must stay at or under 8 bytes per prefix (the frozen arena
# spends 3x+ that), with every CRAM key pinned to the committed
# baseline — layout bytes and expected-miss numbers are pure functions
# of the seeded table, so zero tolerance.
target/release/clue throughput 50000 1 --backend compressed --table 1000000 \
  --check --json BENCH_compressed.json.new
test -s BENCH_compressed.json.new
grep -q '"equivalent": true' BENCH_compressed.json.new
target/release/clue bench-diff BENCH_compressed.json BENCH_compressed.json.new \
  --tolerance 0 --time-tolerance 100000 --max compressed_bytes_per_prefix=8
mv BENCH_compressed.json.new BENCH_compressed.json

# The serving runtime's whole metric family must be registered and
# live in one scrape of the default instrumented workload.
target/release/clue metrics 2000 1 --prom | grep -q '^clue_runtime_packets_total'

# Churn smoke: builder + 4 epoch-pinned readers; --check aborts unless
# the final published snapshot is bit-identical to a from-scratch
# freeze of the end-state table. The scrape server runs alongside, and
# a mid-run curl must see live clue_churn_* metrics — the
# "observable while serving" contract, end to end over real HTTP.
target/release/clue churn 1000 1 --readers 4 --check \
  --json BENCH_churn.json --serve 127.0.0.1:9184 &
CHURN_PID=$!
sleep 2
curl -sf http://127.0.0.1:9184/metrics | grep -q '^clue_churn_swaps_total'
curl -sf http://127.0.0.1:9184/metrics.json | grep -q '"clue_churn_rebuild_latency_us"'
wait "$CHURN_PID"
test -s BENCH_churn.json
grep -q '"identical": true' BENCH_churn.json

# Profile smoke: the per-stage profiler must be semantically inert
# (--check replays every packet through the plain and profiled
# variants of the scalar, frozen, stride and network paths and fails
# on any divergence), and the predicted half of the fresh attribution
# (visits, ticks, bytes) must match the committed baseline exactly —
# only the measured-nanosecond keys are machine-dependent.
target/release/clue profile 20000 1 --check --json BENCH_profile.json.new
test -s BENCH_profile.json.new
grep -q '"inert": true' BENCH_profile.json.new
target/release/clue bench-diff BENCH_profile.json BENCH_profile.json.new \
  --tolerance 0 --time-tolerance 100000
mv BENCH_profile.json.new BENCH_profile.json

# Chaos smoke: a million fault-injected packets spanning every fault
# class must forward bit-identically to the clue-less baseline, and the
# churn leg must survive an injected reader panic plus a watchdog
# rebuild retry (--check aborts on any divergence or wedge). The fresh
# run is also diffed against the committed baseline: fault-class
# outcomes are seeded and deterministic, so any drift in the
# non-timing keys is a behaviour change, not noise.
target/release/clue chaos 1000000 1 --check --json BENCH_chaos.json.new
test -s BENCH_chaos.json.new
grep -q '"divergences": 0' BENCH_chaos.json.new
grep -q '"churn_survived": true' BENCH_chaos.json.new
target/release/clue bench-diff BENCH_chaos.json BENCH_chaos.json.new \
  --tolerance 0 --time-tolerance 100000
mv BENCH_chaos.json.new BENCH_chaos.json

# Adversarial chaos smoke: a pure lying-neighbor stream — every clue
# crafted to maximize degraded cost — must still forward bit-identically
# to the clue-less baseline (--check), and the per-class degradation
# counter must be live on the scrape endpoint mid-run.
target/release/clue chaos 2000000 1 --faults lying_neighbor --check \
  --serve 127.0.0.1:9186 &
CHAOS_PID=$!
sleep 1
curl -sf http://127.0.0.1:9186/metrics \
  | grep -q '^clue_fault_lying_neighbor_injected_total'
wait "$CHAOS_PID"

# Fleet smoke: a 1000+-router transit-stub fleet of stride-compiled
# clue engines. --check asserts the sharded flow leg is bit-identical
# to the sequential reference at 1/2/4/8 workers; the churn leg
# republishes engine bundles through per-router epoch cells while
# serving. The scrape server runs alongside and a mid-run curl must
# see live clue_fleet_* metrics. The fresh export is diffed against
# the committed baseline: topology, flow outcomes, per-link clue
# classes and per-hop savings are all seeded and deterministic.
target/release/clue fleet 50000 1 --routers 1024 --threads 4 --check \
  --churn 4 --json BENCH_fleet.json.new --serve 127.0.0.1:9185 &
FLEET_PID=$!
sleep 1
curl -sf http://127.0.0.1:9185/metrics | grep -q '^clue_fleet_routers'
curl -sf http://127.0.0.1:9185/metrics.json | grep -q '"clue_fleet_link_hit_rate_pct"'
wait "$FLEET_PID"
test -s BENCH_fleet.json.new
grep -q '"checked": true' BENCH_fleet.json.new
grep -q '"dropped": 0' BENCH_fleet.json.new
target/release/clue bench-diff BENCH_fleet.json BENCH_fleet.json.new \
  --tolerance 0 --time-tolerance 100000
mv BENCH_fleet.json.new BENCH_fleet.json

# Adversarial fleet smoke: 8 lying routers at the best-connected
# non-origin positions, each crafting the deepest-mismatch clue per
# packet. --check asserts the whole robustness contract: the +1-probe
# soundness bound on every packet (zero divergences, overhead max 1),
# quarantine within the detection window, re-admission after the
# attack, final-window savings reconverged to the honest fleet, and a
# sound 0..100% participation sweep. Everything but the timing keys is
# seeded and deterministic, so the sweep curve itself is diffed against
# the committed baseline.
target/release/clue fleet 20000 1 --routers 256 --adversaries 8 \
  --attack lying --check --json BENCH_adversarial.json.new
test -s BENCH_adversarial.json.new
grep -q '"sound": true' BENCH_adversarial.json.new
grep -q '"adversary_divergences": 0' BENCH_adversarial.json.new
grep -q '"adversary_bound_violations": 0' BENCH_adversarial.json.new
target/release/clue bench-diff BENCH_adversarial.json BENCH_adversarial.json.new \
  --tolerance 0 --time-tolerance 100000
mv BENCH_adversarial.json.new BENCH_adversarial.json

echo "verify: OK"
