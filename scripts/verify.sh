#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint wall.
# Run from the repo root. Any failure aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Throughput smoke: the batched-frozen and sharded-parallel pipelines
# must agree exactly with the scalar engine (--check aborts on any
# divergence); also seeds the BENCH_* trajectory.
target/release/clue throughput 20000 1 --threads 4 --check --json BENCH_throughput.json
test -s BENCH_throughput.json
grep -q '"equivalent": true' BENCH_throughput.json

# Churn smoke: builder + 4 epoch-pinned readers; --check aborts unless
# the final published snapshot is bit-identical to a from-scratch
# freeze of the end-state table.
target/release/clue churn 1000 1 --readers 4 --check --json BENCH_churn.json
test -s BENCH_churn.json
grep -q '"identical": true' BENCH_churn.json

echo "verify: OK"
