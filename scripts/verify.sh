#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint wall.
# Run from the repo root. Any failure aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
