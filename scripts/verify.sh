#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint wall.
# Run from the repo root. Any failure aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Throughput smoke: the batched-frozen, stride-compiled and
# sharded-parallel pipelines must agree exactly with the scalar engine
# (--check aborts on any divergence); also seeds the BENCH_*
# trajectory. The perf gates are part of the bar: the stride path must
# beat the frozen batch path on the same (paper-scale table) workload,
# and the sharded driver must actually scale past the sequential
# reference — a regression on either fails verification.
target/release/clue throughput 100000 1 --threads 4 --check --json BENCH_throughput.json
test -s BENCH_throughput.json
grep -q '"equivalent": true' BENCH_throughput.json
grep -q '"stride_beats_batch": true' BENCH_throughput.json
grep -q '"parallel_scales": true' BENCH_throughput.json

# Churn smoke: builder + 4 epoch-pinned readers; --check aborts unless
# the final published snapshot is bit-identical to a from-scratch
# freeze of the end-state table.
target/release/clue churn 1000 1 --readers 4 --check --json BENCH_churn.json
test -s BENCH_churn.json
grep -q '"identical": true' BENCH_churn.json

# Chaos smoke: a million fault-injected packets spanning every fault
# class must forward bit-identically to the clue-less baseline, and the
# churn leg must survive an injected reader panic plus a watchdog
# rebuild retry (--check aborts on any divergence or wedge).
target/release/clue chaos 1000000 1 --check --json BENCH_chaos.json
test -s BENCH_chaos.json
grep -q '"divergences": 0' BENCH_chaos.json
grep -q '"churn_survived": true' BENCH_chaos.json

echo "verify: OK"
