#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint wall.
# Run from the repo root. Any failure aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Throughput smoke: the batched-frozen and sharded-parallel pipelines
# must agree exactly with the scalar engine (--check aborts on any
# divergence); also seeds the BENCH_* trajectory.
target/release/clue throughput 20000 1 --threads 4 --check --json BENCH_throughput.json
test -s BENCH_throughput.json
grep -q '"equivalent": true' BENCH_throughput.json

echo "verify: OK"
