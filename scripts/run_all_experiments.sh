#!/usr/bin/env bash
# Regenerates every table/figure reproduction and stores the outputs in
# artifacts/ (see EXPERIMENTS.md for the paper-vs-measured discussion).
#
# Usage:
#   scripts/run_all_experiments.sh            # full scale (paper sizes)
#   CLUE_SCALE=small scripts/run_all_experiments.sh   # 1/10 size, <1 min
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p artifacts
BINS=(
  tables1to3
  tables4to9
  fig1
  fig8_mpls
  table_size
  ipv6_scaling
  heterogeneous
  load_balance
  similarity_sweep
  cache_locality
  classification
  convergence
  ablations
  ortc_ablation
  internet_like
)

cargo build --release -p clue-experiments

for bin in "${BINS[@]}"; do
  echo "== $bin =="
  cargo run --release --quiet -p clue-experiments --bin "$bin" \
    > "artifacts/$bin.txt"
done

echo
echo "wrote ${#BINS[@]} experiment outputs to artifacts/"
