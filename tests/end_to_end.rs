//! Workspace-spanning integration tests: tablegen → core → lookup →
//! netsim, exercising the public API exactly as the examples and
//! experiment harnesses do.

use clue_routing::prelude::*;
use rand::SeedableRng;

/// The full Tables 4–9 pipeline on a small pair: every one of the
/// fifteen (family × method) combinations must return the reference BMP
/// for every generated packet, and the Advance mean must be ≈ 1.
#[test]
fn fifteen_scheme_pipeline_is_correct_and_fast() {
    let sender = synthesize_ipv4(1_500, 11);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(12));
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: 800, ..TrafficConfig::paper(13) },
    );
    assert!(dests.len() >= 700, "traffic generator starved: {}", dests.len());

    for family in Family::all() {
        for method in Method::all() {
            let mut engine =
                ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, method));
            let mut acc = CostStats::new();
            for &dest in &dests {
                let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
                let mut cost = Cost::new();
                let got = engine.lookup(dest, clue, None, &mut cost);
                assert_eq!(got, reference_bmp(&receiver, dest), "{family}/{method} {dest}");
                acc.record(cost);
            }
            if method == Method::Advance {
                assert!(
                    acc.mean() < 1.3,
                    "{family}/Advance mean {:.2} should be ≈ 1 (paper's headline)",
                    acc.mean()
                );
            }
        }
    }
}

/// The paper's speed-up factors, end to end on generated data: Advance
/// beats the Regular baseline by an order of magnitude (paper: ≈ 22×)
/// and beats Log W by more than 2× (paper: ≈ 3.5×).
#[test]
fn headline_speedups_hold() {
    let sender = synthesize_ipv4(3_000, 21);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(22));
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: 1_000, ..TrafficConfig::paper(23) },
    );

    let mean_for = |family: Family, method: Method| -> f64 {
        let mut engine =
            ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, method));
        let mut acc = CostStats::new();
        for &dest in &dests {
            let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
            let mut cost = Cost::new();
            engine.lookup(dest, clue, None, &mut cost);
            acc.record(cost);
        }
        acc.mean()
    };

    let regular_common = mean_for(Family::Regular, Method::Common);
    let regular_advance = mean_for(Family::Regular, Method::Advance);
    let logw_common = mean_for(Family::LogW, Method::Common);
    let patricia_simple = mean_for(Family::Patricia, Method::Simple);

    assert!(
        regular_common / regular_advance > 10.0,
        "Advance speedup over Regular too small: {regular_common:.2}/{regular_advance:.2}"
    );
    assert!(
        logw_common / regular_advance > 2.0,
        "Advance speedup over Log W too small: {logw_common:.2}/{regular_advance:.2}"
    );
    // Simple alone already beats the best clue-less scheme (paper: ~50%
    // improvement over Log W).
    assert!(
        patricia_simple < logw_common,
        "Simple+Patricia {patricia_simple:.2} should beat Log W common {logw_common:.2}"
    );
}

/// Learning engines converge to the same steady-state cost as
/// precomputed ones, without any coordination (Section 3.3.1).
#[test]
fn learning_converges_to_precomputed_costs() {
    let sender = synthesize_ipv4(800, 31);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(32));
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: 600, ..TrafficConfig::paper(33) },
    );

    let cfg = EngineConfig::new(Family::Patricia, Method::Advance);
    let mut pre = ClueEngine::precomputed(&sender, &receiver, cfg);
    let mut learn = ClueEngine::learning(&receiver, cfg);

    // Warm-up pass teaches the learner every clue in the workload.
    for &dest in &dests {
        let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
        learn.lookup(dest, clue, None, &mut Cost::new());
    }
    learn.reclassify_all();

    let (mut cp, mut cl) = (CostStats::new(), CostStats::new());
    for &dest in &dests {
        let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
        let (mut a, mut b) = (Cost::new(), Cost::new());
        let rp = pre.lookup(dest, clue, None, &mut a);
        let rl = learn.lookup(dest, clue, None, &mut b);
        assert_eq!(rp, rl);
        cp.record(a);
        cl.record(b);
    }
    assert!(
        (cl.mean() - cp.mean()).abs() < 0.3,
        "learned {:.2} vs precomputed {:.2}",
        cl.mean(),
        cp.mean()
    );
}

/// The network simulator preserves lookup correctness hop by hop and
/// delivers everything on a connected topology.
#[test]
fn network_simulation_is_sound() {
    let (topo, edges) = Topology::backbone(5, 2);
    let mut cfg =
        NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
    cfg.specifics_per_origin = 15;
    cfg.seed = 5;
    let mut net: Network<Ip4> = Network::build(topo, cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    for _ in 0..50 {
        let src = edges[0];
        let dest = net.random_destination(edges.len() - 1, &mut rng);
        let trace = net.route_packet(src, dest);
        assert!(trace.delivered);
        for h in &trace.hops {
            let fib = &net.routers()[h.router].fib;
            let want = fib.lookup(dest).map(|r| fib.prefix(r));
            assert_eq!(h.bmp, want, "router {} diverged from its own FIB", h.router);
        }
        // Figure 1 invariant: BMP length never shrinks along the path.
        let lens = trace.bmp_lengths();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]), "{lens:?}");
    }
}

/// IPv6: the clue scheme carries over unchanged (7-bit clues), and the
/// Advance headline holds there too — the paper's scaling argument.
#[test]
fn ipv6_engines_work_end_to_end() {
    use clue_routing::tablegen::synthesize_ipv6;
    let sender = synthesize_ipv6(800, 41);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(42));
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: 400, ..TrafficConfig::paper(43) },
    );
    assert!(!dests.is_empty());

    for family in [Family::Patricia, Family::LogW] {
        let mut engine = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(family, Method::Advance),
        );
        let mut acc = CostStats::new();
        for &dest in &dests {
            let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
            let mut cost = Cost::new();
            let got = engine.lookup(dest, clue, None, &mut cost);
            assert_eq!(got, reference_bmp(&receiver, dest));
            acc.record(cost);
        }
        assert!(acc.mean() < 1.3, "{family} IPv6 mean {:.2}", acc.mean());
    }
}

/// Parsing a serialized synthetic table and rebuilding the engine gives
/// identical results — the real-data path.
#[test]
fn text_roundtrip_preserves_engine_behaviour() {
    use clue_routing::tablegen::{format_prefixes, parse_prefixes};
    let sender = synthesize_ipv4(400, 51);
    let receiver = derive_neighbor(&sender, &NeighborConfig::route_servers(52));
    let receiver2: Vec<Prefix<Ip4>> =
        parse_prefixes(&format_prefixes(&receiver)).expect("roundtrip parses");
    assert_eq!(receiver, receiver2);

    let cfg = EngineConfig::new(Family::Binary, Method::Advance);
    let mut a = ClueEngine::precomputed(&sender, &receiver, cfg);
    let mut b = ClueEngine::precomputed(&sender, &receiver2, cfg);
    let dests = generate(&sender, &receiver, &TrafficConfig { count: 200, ..TrafficConfig::paper(53) });
    for &dest in &dests {
        let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
        let (mut ca, mut cb) = (Cost::new(), Cost::new());
        assert_eq!(a.lookup(dest, clue, None, &mut ca), b.lookup(dest, clue, None, &mut cb));
        assert_eq!(ca, cb);
    }
}
