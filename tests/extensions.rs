//! Facade-level integration of the extension crates: wire format,
//! classification and the clue cache composing with the core engines.

use clue_routing::classify::{Action, ClueClassifier, Filter, FlowKey, RuleSet};
use clue_routing::prelude::*;
use clue_routing::wire::{Ipv4Packet, Ipv6Packet};

fn p(s: &str) -> Prefix<Ip4> {
    s.parse().unwrap()
}

/// A router loop at the byte level: parse → engine lookup → rewrite →
/// serialize, ten hops deep, with the engine results checked against a
/// reference at every hop.
#[test]
fn ten_hop_wire_loop_stays_consistent() {
    let tables: Vec<Vec<Prefix<Ip4>>> = (0..10)
        .map(|i| {
            let mut t = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
            if i >= 5 {
                t.push(p("10.1.2.0/24")); // downstream half holds detail
            }
            t
        })
        .collect();
    let cfg = EngineConfig::new(Family::Patricia, Method::Advance);
    let mut engines: Vec<ClueEngine<Ip4>> = (0..10)
        .map(|i| {
            let upstream = if i == 0 { Vec::new() } else { tables[i - 1].clone() };
            ClueEngine::precomputed(&upstream, &tables[i], cfg)
        })
        .collect();

    let dest: Ip4 = "10.1.2.3".parse().unwrap();
    let mut bytes = Ipv4Packet::new("192.0.2.1".parse().unwrap(), dest, 6).to_bytes();
    let mut total_cost = 0u64;
    for (i, engine) in engines.iter_mut().enumerate() {
        let mut pkt = Ipv4Packet::parse(&bytes).expect("header verifies at every hop");
        let mut cost = Cost::new();
        let header = pkt.clue;
        let bmp = engine.lookup_with_header(pkt.dst, &header, &mut cost);
        assert_eq!(bmp, reference_bmp(&tables[i], dest), "hop {i}");
        total_cost += cost.total();
        pkt.ttl -= 1;
        if let Some(b) = bmp {
            pkt.clue = ClueHeader::with_clue(&b);
        }
        bytes = pkt.to_bytes();
    }
    // First hop pays a full lookup; the boundary hop (5) pays a short
    // continuation; everything else is one access.
    assert!(total_cost < 10 + 8 + 4, "path cost too high: {total_cost}");
    let last = Ipv4Packet::parse(&bytes).unwrap();
    assert_eq!(last.ttl, 54);
    assert_eq!(last.clue.decode(dest), Some(p("10.1.2.0/24")));
}

/// IPv6 end to end through the facade: 7-bit clues on the wire feeding
/// an IPv6 engine.
#[test]
fn ipv6_wire_to_engine() {
    let sender: Vec<Prefix<Ip6>> = vec!["2001:db8::/32".parse().unwrap()];
    let receiver: Vec<Prefix<Ip6>> =
        vec!["2001:db8::/32".parse().unwrap(), "2001:db8:1::/48".parse().unwrap()];
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::LogW, Method::Advance),
    );
    let dest: Ip6 = "2001:db8:1::42".parse().unwrap();
    let pkt = Ipv6Packet::new("2001:db8::1".parse().unwrap(), dest, 17)
        .with_clue(ClueHeader::with_clue(&sender[0]));
    let parsed = Ipv6Packet::parse(&pkt.to_bytes()).unwrap();
    let mut cost = Cost::new();
    let bmp = engine.lookup_with_header(parsed.dst, &parsed.clue, &mut cost);
    assert_eq!(bmp, Some("2001:db8:1::/48".parse().unwrap()));
}

/// Classification and routing clues coexist: a flow is clue-routed to
/// its BMP and clue-classified by its filter, both in a handful of
/// accesses.
#[test]
fn routing_and_classification_clues_compose() {
    let table = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
    let mut engine =
        ClueEngine::precomputed(&table, &table, EngineConfig::new(Family::Binary, Method::Advance));

    let rules = vec![
        Filter::<Ip4> {
            dst: p("10.1.0.0/16"),
            dst_ports: 80..=80,
            priority: 10,
            ..Filter::default_rule(Action::Permit)
        },
        Filter::default_rule(Action::Deny),
    ];
    let cc = ClueClassifier::new(RuleSet::new(rules.clone()), RuleSet::new(rules));

    let key = FlowKey::<Ip4> {
        src: "192.0.2.9".parse().unwrap(),
        dst: "10.1.2.3".parse().unwrap(),
        src_port: 50000,
        dst_port: 80,
        proto: 6,
    };
    let mut route_cost = Cost::new();
    let bmp = engine.lookup(key.dst, Some(p("10.1.0.0/16")), None, &mut route_cost);
    assert_eq!(bmp, Some(p("10.1.0.0/16")));
    assert_eq!(route_cost.total(), 1);

    let clue = cc.upstream().classify_uncounted(&key).and_then(|f| cc.upstream().position_of(f));
    let mut class_cost = Cost::new();
    let verdict = cc.classify(&key, clue, &mut class_cost).unwrap();
    assert_eq!(verdict.action, Action::Permit);
    assert!(class_cost.total() <= 3);
}

/// The cache composes with learning engines: flood guard + LRU keep the
/// table and cache bounded while repeats get cheap.
#[test]
fn cached_learning_engine_stays_bounded_and_fast() {
    let receiver = vec![p("10.0.0.0/8"), p("10.1.0.0/16")];
    let mut cfg = EngineConfig::new(Family::Patricia, Method::Advance);
    cfg.max_learned_entries = Some(8);
    let mut engine = ClueEngine::learning(&receiver, cfg);
    engine.enable_cache(4);

    let dest: Ip4 = "10.1.2.3".parse().unwrap();
    let clue = Some(p("10.1.0.0/16"));
    engine.lookup(dest, clue, None, &mut Cost::new()); // learn
    let mut warm = Cost::new();
    engine.lookup(dest, clue, None, &mut warm); // cache miss, promote
    let mut hot = Cost::new();
    engine.lookup(dest, clue, None, &mut hot); // cache hit
    assert_eq!(hot.slow_total(), 0, "{hot}");
    assert!(warm.slow_total() >= 1);
    assert!(engine.table().len() <= 8);
    assert!(engine.describe().contains("cache"));
}
