//! Two neighboring ISP routers, fifteen lookup methods — a miniature of
//! the paper's Tables 4–9.
//!
//! ```sh
//! cargo run --release --example isp_pair
//! ```
//!
//! Generates an AT&T-1/AT&T-2–style pair (≈99 % shared prefixes), sends
//! 10 000 clue-carrying packets from one to the other, and prints the
//! average memory accesses per lookup for {Regular, Patricia, Binary,
//! 6-way, Log W} × {common, Simple, Advance}.

use clue_routing::prelude::*;

fn main() {
    let n = 10_000;
    println!("synthesizing a same-ISP router pair…");
    let sender = synthesize_ipv4(8_000, 1999);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(2001));
    let stats = PairStats::compute(&sender, &receiver);
    println!(
        "  sender {} prefixes, receiver {}, intersection {} ({:.1}%), problematic clues {} ({:.2}%)\n",
        stats.sender_size,
        stats.receiver_size,
        stats.intersection,
        stats.similarity() * 100.0,
        stats.problematic,
        stats.problematic_fraction() * 100.0
    );

    let dests = generate(&sender, &receiver, &TrafficConfig::paper(7));
    println!("routing {} packets (paper methodology)\n", dests.len());
    println!("{:<10} {:>10} {:>10} {:>10}", "family", "common", "Simple", "Advance");

    for family in Family::all() {
        let mut row = format!("{:<10}", family.label());
        for method in Method::all() {
            let mut engine =
                ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, method));
            let mut acc = CostStats::new();
            for &dest in &dests {
                let clue = reference_bmp(&sender, dest).filter(|c| !c.is_empty());
                let mut cost = Cost::new();
                let got = engine.lookup(dest, clue, None, &mut cost);
                debug_assert_eq!(got, reference_bmp(&receiver, dest));
                acc.record(cost);
            }
            row.push_str(&format!(" {:>10.2}", acc.mean()));
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper, Tables 4–9): Advance ≈ 1.0–1.1 for every family,\n\
         Simple ≈ 2–3, common ≈ 16–26 for Regular/Binary and ≈ 4–7 for Patricia/6-way/LogW."
    );
    println!("_{n} packets requested; vertex-filtered as in Section 6_");
}
