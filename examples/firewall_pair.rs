//! The Section 7 extension in action: two firewalls sharing most of a
//! policy, with the clue naming the filter the first one matched.
//!
//! ```sh
//! cargo run --release --example firewall_pair
//! ```
//!
//! An edge firewall (FW1) and a core firewall (FW2) run the same
//! corporate rule set; FW2 additionally carries a few core-only rules.
//! FW1 classifies each flow and stamps the matched filter as a clue;
//! FW2 then examines only the candidates its precomputation left alive:
//! filters intersecting the clue, minus every shared higher-priority
//! rule (the Claim 1 analogue — had the flow matched one of those, FW1
//! would have said so).

use clue_routing::classify::{Action, ClueClassifier, Filter, FlowKey, RuleSet};
use clue_routing::prelude::*;

fn rule(dst: &str, ports: core::ops::RangeInclusive<u16>, prio: u32, action: Action) -> Filter<Ip4> {
    Filter {
        dst: dst.parse().unwrap(),
        dst_ports: ports,
        proto: Some(6),
        priority: prio,
        ..Filter::default_rule(action)
    }
}

fn main() {
    // The shared corporate policy.
    let shared = vec![
        rule("10.10.0.0/16", 443..=443, 50, Action::Permit), // intranet TLS
        rule("10.10.0.0/16", 80..=80, 40, Action::Permit),   // intranet HTTP
        rule("10.10.9.0/24", 0..=u16::MAX, 60, Action::Deny), // quarantined subnet
        rule("10.20.0.0/16", 22..=22, 30, Action::Permit),   // admin SSH
        Filter::default_rule(Action::Deny),
    ];
    // FW2 adds core-only QoS marking.
    let mut core_rules = shared.clone();
    core_rules.push(rule("10.10.3.0/24", 443..=443, 70, Action::Mark(5)));

    let fw1 = RuleSet::new(shared.clone());
    let fw2 = ClueClassifier::new(RuleSet::new(core_rules), RuleSet::new(shared));

    println!("FW1: {} rules; FW2: {} rules; mean clue candidate list: {:.1}\n", fw1.len(), fw2.local().len(), fw2.mean_candidates());

    let flows = [
        ("laptop -> intranet TLS", "10.10.1.5", 443),
        ("laptop -> quarantined", "10.10.9.7", 443),
        ("admin -> SSH", "10.20.0.9", 22),
        ("laptop -> marked subnet", "10.10.3.3", 443),
        ("stranger -> nowhere", "172.16.0.1", 9999),
    ];

    for (name, dst, port) in flows {
        let key = FlowKey::<Ip4> {
            src: "192.168.1.50".parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 55000,
            dst_port: port,
            proto: 6,
        };
        // FW1 classifies and stamps the clue.
        let mut c1 = Cost::new();
        let matched = fw1.classify(&key, &mut c1).expect("default rule catches all");
        let clue = fw1.position_of(matched);

        // FW2: clue-restricted vs full scan.
        let mut with = Cost::new();
        let verdict = fw2.classify(&key, clue, &mut with).expect("default rule");
        let mut without = Cost::new();
        let same = fw2.local().classify(&key, &mut without);
        assert_eq!(Some(verdict), same);

        println!("{name:<26} FW1 matched p{:<3} -> FW2 verdict {:?}", matched.priority, verdict.action);
        println!(
            "{:<26} FW2 cost: {} with clue vs {} full scan",
            "", with.total(), without.total()
        );
    }

    println!("\nthe quarantine, marking and default verdicts all survive the restriction —");
    println!("the clue changes the scan length, never the decision.");
}
