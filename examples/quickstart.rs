//! Quickstart: two neighboring routers and one clue.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Router R1 forwards a packet to router R2 and piggybacks a *clue*: the
//! best matching prefix it found, encoded in 5 bits. R2's clue table
//! usually resolves the packet in a single memory access, against ~25 for
//! a classic bit-by-bit trie walk.

use clue_routing::prelude::*;

fn p(s: &str) -> Prefix<Ip4> {
    s.parse().unwrap()
}

fn main() {
    // R1's forwarding table (what it may send as clues) and R2's table.
    let r1 = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
    let r2 = vec![
        p("10.0.0.0/8"),
        p("10.1.0.0/16"),
        p("10.1.2.0/24"), // R2 refines 10.1/16 — the interesting case
        p("192.168.0.0/16"),
    ];

    // R2's engine for the link from R1: Advance method over a Patricia
    // trie, clue table fully precomputed from both tables.
    let mut engine =
        ClueEngine::precomputed(&r1, &r2, EngineConfig::new(Family::Patricia, Method::Advance));

    println!("R2's clue table: {} entries, {:.1}% problematic, {} bytes (paper model)\n",
        engine.table().len(),
        engine.table().problematic_fraction() * 100.0,
        engine.table().memory_bytes_model());

    for (dest_txt, note) in [
        ("192.168.7.9", "identical prefix on both routers: clue is final"),
        ("10.1.2.3", "R2 refines the clue: short continued search"),
        ("10.9.9.9", "clue 10/8, no better match at R2: final"),
    ] {
        let dest: Ip4 = dest_txt.parse().unwrap();

        // R1 does its lookup and stamps the clue (5 bits in the header).
        let clue = reference_bmp(&r1, dest).expect("R1 matches");
        let header = ClueHeader::with_clue(&clue);

        // R2: clue-assisted lookup vs. the plain lookup.
        let mut with = Cost::new();
        let bmp = engine.lookup_with_header(dest, &header, &mut with);
        let mut without = Cost::new();
        let same = engine.common_lookup(dest, &mut without);
        assert_eq!(bmp, same, "the clue never changes the result");

        println!("dest {dest_txt:<14} clue {clue}  ->  BMP {:?}", bmp.map(|p| p.to_string()));
        println!("  {note}");
        println!(
            "  with clue: {:>2} accesses   without: {:>2} accesses\n",
            with.total(),
            without.total()
        );
    }
}
