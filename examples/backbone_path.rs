//! A packet crossing an ISP backbone — the paper's Figure 1, live.
//!
//! ```sh
//! cargo run --release --example backbone_path
//! ```
//!
//! Builds a two-level topology (core ring + edge routers), routes a
//! packet edge-to-edge and prints, per hop, the best-matching-prefix
//! length (growing toward the destination) and the lookup work (spiking
//! only where the prefix detail deepens — the backbone coasts at one
//! access per packet).

use clue_routing::prelude::*;
use rand::SeedableRng;

fn main() {
    let (topo, edges) = Topology::backbone(6, 2);
    println!(
        "topology: {} routers ({} core in a ring, {} edge)\n",
        topo.len(),
        6,
        edges.len()
    );

    let mut cfg =
        NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Patricia, Method::Advance));
    cfg.specifics_per_origin = 30;
    cfg.seed = 1999;
    let mut net: Network<Ip4> = Network::build(topo, cfg);

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let src = edges[0];
    let dest_origin = edges.len() - 1; // the far side of the ring
    let dest = net.random_destination(dest_origin, &mut rng);

    println!("routing {dest} from router {src} (edge) to origin router {}\n", edges[dest_origin]);
    let trace = net.route_packet(src, dest);
    assert!(trace.delivered);

    println!("{:<6} {:<8} {:>8} {:>6} {:<22}", "hop", "router", "BMP-len", "work", "note");
    for (i, h) in trace.hops.iter().enumerate() {
        let role = if net.config().origins.contains(&h.router) { "edge" } else { "core" };
        let note = if !h.used_clue {
            "full lookup (no clue yet)"
        } else if h.cost.total() == 1 {
            "clue final: 1 access"
        } else {
            "clue + short continuation"
        };
        println!(
            "{:<6} {:<8} {:>8} {:>6} {:<22}",
            i,
            format!("{} ({role})", h.router),
            h.bmp.map_or(0, |p| p.len()),
            h.cost.total(),
            note
        );
    }
    println!(
        "\npath total: {} accesses; a clue-less network would spend {} per hop instead",
        trace.total_cost(),
        trace.hops[0].cost.total()
    );
    println!("\nThis is Figure 1 of the paper: the BMP length rises toward the");
    println!("destination while the per-router work stays near one access in the");
    println!("backbone and concentrates at the detail boundaries.");
}
