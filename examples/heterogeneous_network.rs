//! Incremental deployment: clue routing in a network where only some
//! routers participate (Section 5.3 of the paper).
//!
//! ```sh
//! cargo run --release --example heterogeneous_network
//! ```
//!
//! Sweeps the fraction of participating routers from 0 % to 100 % and
//! measures the network-wide lookup cost. Non-participating routers do a
//! full lookup and *relay* the incoming clue unchanged, so even a distant
//! participating pair still benefits — the paper's argument that the
//! scheme needs no flag-day deployment.

use clue_routing::prelude::*;

fn main() {
    let packets = 400;
    println!("participation sweep on a 6-core backbone, {} packets each\n", packets);
    println!("{:>14} {:>16} {:>18} {:>12}", "participation", "total accesses", "mean per hop", "delivered");

    let mut baseline = None;
    for percent in [0, 25, 50, 75, 100] {
        let (topo, edges) = Topology::backbone(6, 2);
        let mut cfg =
            NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Patricia, Method::Advance));
        cfg.specifics_per_origin = 25;
        cfg.participation = percent as f64 / 100.0;
        cfg.seed = 42;
        let mut net: Network<Ip4> = Network::build(topo, cfg);
        let stats = run_workload(&mut net, &edges, packets, 7);
        if percent == 0 {
            baseline = Some(stats.total_accesses);
        }
        let saving = baseline
            .map(|b| 100.0 * (1.0 - stats.total_accesses as f64 / b as f64))
            .unwrap_or(0.0);
        println!(
            "{:>13}% {:>16} {:>18.2} {:>11}/{}  ({saving:+.0}% vs clue-less)",
            percent,
            stats.total_accesses,
            stats.mean_per_hop(),
            stats.delivered,
            stats.packets,
        );
    }

    println!("\nEvery increment pays off immediately — mixing clue-aware and legacy");
    println!("routers needs no coordination, setup, or label distribution.");
}
