//! Down to the bytes: clue routing over real IPv4 headers.
//!
//! ```sh
//! cargo run --release --example wire_pipeline
//! ```
//!
//! Three routers in a row forward an actual serialized IPv4 packet. Each
//! participating router parses the header (checksum verified), feeds the
//! clue option into its engine, rewrites the option with its own BMP,
//! decrements the TTL and re-serializes — Section 5.3's deployment story
//! (“the 5 bits find their place in the current IP header, e.g., in the
//! options field”) made concrete. The middle router is clue-less legacy
//! equipment: it must forward the packet unchanged except for the TTL,
//! and the clue must survive for the third router.

use clue_routing::prelude::*;
use clue_routing::wire::Ipv4Packet;

fn p(s: &str) -> Prefix<Ip4> {
    s.parse().unwrap()
}

struct WireRouter {
    name: &'static str,
    engine: Option<ClueEngine<Ip4>>, // None = clue-less legacy router
    fib: Vec<Prefix<Ip4>>,
}

impl WireRouter {
    /// Parse → look up → rewrite → serialize. Returns the bytes for the
    /// next hop.
    fn forward(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut pkt = Ipv4Packet::parse(bytes).expect("valid header");
        let mut cost = Cost::new();
        let bmp = match &mut self.engine {
            Some(engine) => {
                let header = pkt.clue;
                engine.lookup_with_header(pkt.dst, &header, &mut cost)
            }
            None => {
                // Legacy router: full scan of its own table, clue left
                // untouched on the packet.
                reference_bmp(&self.fib, pkt.dst)
            }
        };
        println!(
            "{:<4} dst {:<12} wire {}B  clue-in {:<14} BMP {:<16} cost {}",
            self.name,
            pkt.dst.to_string(),
            bytes.len(),
            pkt.clue.to_string(),
            bmp.map_or("(none)".to_owned(), |b| b.to_string()),
            cost.total(),
        );
        pkt.ttl -= 1;
        if let (Some(_), Some(b)) = (&self.engine, bmp) {
            pkt.clue = ClueHeader::with_clue(&b); // rewrite the option
        }
        pkt.to_bytes()
    }
}

fn main() {
    let r1 = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")];
    let r2 = r1.clone(); // legacy router, same table
    let r3 = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24"), p("192.168.0.0/16")];

    let cfg = EngineConfig::new(Family::Patricia, Method::Advance);
    let mut routers = [
        WireRouter { name: "R1", engine: Some(ClueEngine::precomputed(&[], &r1, cfg)), fib: r1.clone() },
        WireRouter { name: "R2", engine: None, fib: r2 }, // clue-less
        WireRouter { name: "R3", engine: Some(ClueEngine::precomputed(&r1, &r3, cfg)), fib: r3 },
    ];

    let pkt = Ipv4Packet::new("198.51.100.7".parse().unwrap(), "10.1.2.3".parse().unwrap(), 17);
    let mut bytes = pkt.to_bytes();
    println!("source emits a {}-byte clue-less header\n", bytes.len());

    for r in &mut routers {
        bytes = r.forward(&bytes);
    }

    let final_pkt = Ipv4Packet::parse(&bytes).unwrap();
    println!(
        "\nafter 3 hops: TTL {}, clue on the wire {} ({} header bytes)",
        final_pkt.ttl,
        final_pkt.clue,
        bytes.len()
    );
    println!("R2 never touched the option, yet R3 still used R1's clue — the");
    println!("heterogeneous-deployment story, verified at the byte level.");
}
